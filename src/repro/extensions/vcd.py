"""VCD (Value Change Dump) export of execution traces.

Writes the firing intervals recorded by the constrained state-space
engine as an IEEE-1364 VCD waveform — one 1-bit signal per actor, high
while a firing is active — so a mapped application's schedule can be
inspected in any waveform viewer (GTKWave, Surfer, ...).  Tiles become
scopes, unscheduled connection/alignment actors live in a ``network``
scope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.throughput.constrained import TraceEvent

# Printable ASCII per the VCD grammar, minus the scalar value characters
# (0, 1, b, B, x, X, z, Z) so value-change lines parse unambiguously.
_IDENTIFIER_ALPHABET = (
    "!\"#$%&'()*+,-./23456789:;<=>?@ACDEFGHIJKLMNOPQRSTUVWY"
    "[\\]^_`acdefghijklmnopqrstuvwy{|}~"
)


def _identifier(index: int) -> str:
    """Compact VCD identifier codes (printable ASCII, base-94)."""
    digits = []
    index += 1
    while index:
        index, remainder = divmod(index - 1, len(_IDENTIFIER_ALPHABET))
        digits.append(_IDENTIFIER_ALPHABET[remainder])
    return "".join(reversed(digits))


def _sanitise(name: str) -> str:
    """VCD identifiers may not contain whitespace or '$'."""
    return name.replace(" ", "_").replace("$", "_")


def trace_to_vcd(
    events: Sequence[TraceEvent],
    timescale: str = "1 ns",
    comment: str = "repro constrained execution trace",
) -> str:
    """Render ``events`` as VCD text.

    Overlapping firings of the same actor (auto-concurrent connection
    actors) are merged into one high level spanning their union — VCD
    wires are binary, so concurrency depth is not representable per
    signal.
    """
    # group events by (scope, actor)
    signals: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    order: List[Tuple[str, str]] = []
    for event in events:
        scope = event.tile if event.tile is not None else "network"
        key = (scope, event.actor)
        if key not in signals:
            signals[key] = []
            order.append(key)
        signals[key].append((event.start, event.end))

    # merge overlapping intervals per signal
    merged: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    for key, intervals in signals.items():
        intervals.sort()
        collapsed: List[Tuple[int, int]] = []
        for start, end in intervals:
            end = max(end, start + 1)  # zero-width pulses become 1 unit
            if collapsed and start <= collapsed[-1][1]:
                collapsed[-1] = (
                    collapsed[-1][0],
                    max(collapsed[-1][1], end),
                )
            else:
                collapsed.append((start, end))
        merged[key] = collapsed

    lines = [
        f"$comment {comment} $end",
        f"$timescale {timescale} $end",
    ]
    identifiers: Dict[Tuple[str, str], str] = {}
    scopes: Dict[str, List[Tuple[str, str]]] = {}
    for key in order:
        scopes.setdefault(key[0], []).append(key)
    for index, key in enumerate(order):
        identifiers[key] = _identifier(index)
    for scope, keys in scopes.items():
        lines.append(f"$scope module {_sanitise(scope)} $end")
        for key in keys:
            lines.append(
                f"$var wire 1 {identifiers[key]} "
                f"{_sanitise(key[1])} $end"
            )
        lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # change list: (time, value, identifier)
    changes: List[Tuple[int, int, str]] = []
    for key, intervals in merged.items():
        for start, end in intervals:
            changes.append((start, 1, identifiers[key]))
            changes.append((end, 0, identifiers[key]))
    changes.sort(key=lambda change: (change[0], change[1]))

    lines.append("$dumpvars")
    for key in order:
        lines.append(f"0{identifiers[key]}")
    lines.append("$end")
    current_time: Optional[int] = None
    for time, value, identifier in changes:
        if time != current_time:
            lines.append(f"#{time}")
            current_time = time
        lines.append(f"{value}{identifier}")
    if changes:
        lines.append(f"#{changes[-1][0] + 1}")
    return "\n".join(lines) + "\n"


def write_vcd(
    events: Sequence[TraceEvent],
    path: str,
    timescale: str = "1 ns",
) -> None:
    """Write ``events`` to ``path`` as a VCD file."""
    with open(path, "w") as handle:
        handle.write(trace_to_vcd(events, timescale=timescale))
