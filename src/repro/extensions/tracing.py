"""Gantt-style execution traces of mapped applications.

:func:`trace_allocation` replays an allocation (binding + schedules +
slices) through the constrained state-space engine with event recording
turned on, yielding the firing intervals of every actor — application
actors on their tiles plus connection/alignment actors.
:func:`render_gantt` draws the result as a fixed-width text chart,
which makes TDMA gating visually obvious (firings stretch across the
unreserved part of the wheel).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.appmodel.binding import Allocation
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.arch.architecture import ArchitectureGraph
from repro.throughput.constrained import (
    TraceEvent,
    constrained_throughput,
)
from repro.throughput.state_space import DEFAULT_MAX_STATES


def trace_allocation(
    allocation: Allocation,
    architecture: ArchitectureGraph,
    max_states: int = DEFAULT_MAX_STATES,
) -> List[TraceEvent]:
    """Firing intervals of ``allocation`` (transient + one period).

    ``architecture`` must describe the same platform the allocation was
    computed on (occupancy is irrelevant; only wheels and connections
    are read).
    """
    bag = build_binding_aware_graph(
        allocation.application,
        architecture,
        allocation.binding,
        slices=dict(allocation.scheduling.slices),
    )
    events: List[TraceEvent] = []
    constrained_throughput(
        bag.graph,
        bag.tile_constraints(allocation.scheduling),
        max_states=max_states,
        trace=events,
    )
    return events


def render_gantt(
    events: Sequence[TraceEvent],
    width: int = 72,
    until: Optional[int] = None,
    include_unscheduled: bool = True,
) -> str:
    """A text Gantt chart of ``events``.

    One row per actor; ``#`` marks time the firing occupies (including
    out-of-slice waiting under TDMA gating), ``.`` idle time.  ``until``
    crops the horizon (default: the last event's end).
    """
    if not events:
        return "(no events)"
    horizon = until if until is not None else max(e.end for e in events)
    horizon = max(horizon, 1)
    scale = width / horizon

    rows: Dict[str, List[str]] = {}
    order: List[str] = []
    for event in events:
        if not include_unscheduled and event.tile is None:
            continue
        label = (
            f"{event.actor}@{event.tile}" if event.tile else event.actor
        )
        if label not in rows:
            rows[label] = ["."] * width
            order.append(label)
        start = min(int(event.start * scale), width - 1)
        end = min(int(event.end * scale), width)
        if end <= start:
            end = start + 1
        for column in range(start, end):
            rows[label][column] = "#"

    label_width = max(len(label) for label in order)
    lines = [
        f"{'time 0':<{label_width}} |{'-' * (width - 8)} {horizon}"
    ]
    for label in order:
        lines.append(f"{label:<{label_width}} |{''.join(rows[label])}|")
    return "\n".join(lines)
