"""Application ordering before multi-application allocation (§10.1).

The paper's flow handles applications in arrival order and stops at the
first failure, then remarks that "a design-time preprocessing step that
orders the applications ... may improve the results".  This module
provides that step: a set of ordering heuristics plus a comparator that
runs the allocate-until-failure flow under each.

Heuristics (all deterministic):

* ``fifo`` — the given order (the paper's baseline);
* ``heaviest-first`` / ``lightest-first`` — by total worst-case work
  (``sum gamma(a) * tau_max(a)``), the l_p numerator;
* ``tightest-first`` / ``loosest-first`` — by the throughput constraint
  relative to the application's ideal rate (how demanding the
  constraint is);
* ``most-memory-first`` — by total memory footprint (actor state plus
  intra-tile buffer bound), useful on memory-pressured platforms.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph
from repro.core.flow import FlowResult, allocate_until_failure
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights


def _total_work(application: ApplicationGraph) -> int:
    return application.total_worst_case_work()


def _memory_footprint(application: ApplicationGraph) -> int:
    total = 0
    for name, requirements in application.actor_requirements.items():
        if requirements.options:
            total += max(mu for _, mu in requirements.options.values())
    for channel_name, theta in application.channel_requirements.items():
        total += theta.buffer_tile * theta.token_size
    return total


def _constraint_tightness(application: ApplicationGraph) -> Fraction:
    """lambda normalised by the serial work bound (larger = tighter)."""
    work = _total_work(application)
    constraint = application.throughput_constraint
    gamma_out = application.gamma[application.output_actor]
    if work == 0:
        return Fraction(0)
    return Fraction(constraint) * work / gamma_out


ORDERING_STRATEGIES: Dict[str, Callable[[ApplicationGraph], object]] = {
    "fifo": lambda app: 0,  # stable sort keeps the input order
    "heaviest-first": lambda app: -_total_work(app),
    "lightest-first": _total_work,
    "tightest-first": lambda app: -_constraint_tightness(app),
    "loosest-first": _constraint_tightness,
    "most-memory-first": lambda app: -_memory_footprint(app),
}


def order_applications(
    applications: Sequence[ApplicationGraph],
    strategy: str = "fifo",
) -> List[ApplicationGraph]:
    """``applications`` re-ordered by the named heuristic (stable)."""
    try:
        key = ORDERING_STRATEGIES[strategy]
    except KeyError:
        raise KeyError(
            f"unknown ordering strategy {strategy!r}; expected one of "
            f"{sorted(ORDERING_STRATEGIES)}"
        ) from None
    return sorted(applications, key=key)


def compare_orderings(
    architecture: ArchitectureGraph,
    applications: Sequence[ApplicationGraph],
    weights: Optional[CostWeights] = None,
    strategies: Optional[Iterable[str]] = None,
    continue_after_failure: bool = False,
) -> Dict[str, FlowResult]:
    """Run the allocation flow once per ordering strategy.

    Each run gets a fresh copy of ``architecture``; the input is never
    mutated.  Returns strategy name -> :class:`FlowResult`.
    """
    chosen = list(strategies) if strategies else list(ORDERING_STRATEGIES)
    results: Dict[str, FlowResult] = {}
    for strategy in chosen:
        ordered = order_applications(applications, strategy)
        allocator = ResourceAllocator(weights=weights or CostWeights.default())
        results[strategy] = allocate_until_failure(
            architecture.copy(),
            ordered,
            allocator=allocator,
            continue_after_failure=continue_after_failure,
        )
    return results
