"""Automatic tile-cost weight tuning (automating the paper's §10.2 step).

The paper sweeps five hand-picked weight settings over its benchmark,
observes that communication dominates and memory is a strong secondary
objective, and *manually* derives the (0, 1, 2) cost function that wins
on the mixed set.  This module automates that derivation: a grid search
over the weight simplex evaluates each candidate with the
allocate-until-failure flow on a training workload and returns the
setting that binds the most applications (ties broken towards fewer
total committed resources).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph
from repro.core.flow import FlowResult, allocate_until_failure
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights


def weight_grid(levels: Sequence[float] = (0, 1, 2)) -> List[CostWeights]:
    """All weight combinations over ``levels`` except the all-zero one.

    Scalar multiples rank tiles identically, so only one representative
    per direction is kept (the lexicographically smallest).
    """
    seen: Dict[Tuple[float, ...], CostWeights] = {}
    for combination in product(levels, repeat=3):
        if not any(combination):
            continue
        scale = max(combination)
        direction = tuple(value / scale for value in combination)
        if direction not in seen:
            seen[direction] = CostWeights(*combination)
    return list(seen.values())


@dataclass
class TuningResult:
    """Winner of the grid search plus every candidate's score."""

    best: CostWeights
    best_flow: FlowResult
    scores: Dict[Tuple[float, float, float], int]

    def ranking(self) -> List[Tuple[CostWeights, int]]:
        """Candidates sorted best-first by applications bound."""
        return sorted(
            (
                (CostWeights(*weights), bound)
                for weights, bound in self.scores.items()
            ),
            key=lambda item: -item[1],
        )


def tune_weights(
    architecture: ArchitectureGraph,
    applications: Sequence[ApplicationGraph],
    candidates: Optional[Sequence[CostWeights]] = None,
    continue_after_failure: bool = False,
) -> TuningResult:
    """Grid-search the Eqn. 2 weights on a training workload.

    Every candidate gets a fresh copy of ``architecture``.  The winner
    maximises the number of bound applications; among equals, the one
    committing the least total time-wheel wins (it leaves the most head
    room for further applications).
    """
    candidates = weight_grid() if candidates is None else list(candidates)
    if not candidates:
        raise ValueError("no weight candidates to evaluate")
    applications = list(applications)

    best: Optional[CostWeights] = None
    best_flow: Optional[FlowResult] = None
    scores: Dict[Tuple[float, float, float], int] = {}
    for weights in candidates:
        flow = allocate_until_failure(
            architecture.copy(),
            applications,
            allocator=ResourceAllocator(weights=weights),
            continue_after_failure=continue_after_failure,
        )
        scores[weights.as_tuple()] = flow.applications_bound
        if best_flow is None:
            best, best_flow = weights, flow
            continue
        better = flow.applications_bound > best_flow.applications_bound
        tie = flow.applications_bound == best_flow.applications_bound
        leaner = (
            flow.resource_usage["timewheel"]
            < best_flow.resource_usage["timewheel"]
        )
        if better or (tie and leaner):
            best, best_flow = weights, flow
    assert best is not None and best_flow is not None
    return TuningResult(best=best, best_flow=best_flow, scores=scores)
