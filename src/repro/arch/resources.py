"""Resource reservations: commit/rollback of an allocation on tiles.

The multi-application flow of the paper allocates graphs one after the
other; a successful allocation must permanently occupy its share of
every tile (time slice, memory, NI connections, bandwidth) so that later
applications only see the remainder.  A failed attempt must leave the
architecture untouched.  :class:`ResourceReservation` makes that
transactional behaviour explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.architecture import ArchitectureGraph
from repro.resilience.faults import fault_point


class InsufficientResourcesError(RuntimeError):
    """Raised when a reservation does not fit the remaining capacity."""


@dataclass
class TileReservation:
    """Amounts claimed on a single tile."""

    time_slice: int = 0
    memory: int = 0
    connections: int = 0
    bandwidth_in: int = 0
    bandwidth_out: int = 0

    def is_empty(self) -> bool:
        return not (
            self.time_slice
            or self.memory
            or self.connections
            or self.bandwidth_in
            or self.bandwidth_out
        )


@dataclass
class ResourceReservation:
    """Per-tile resource claims of one application allocation."""

    tiles: Dict[str, TileReservation] = field(default_factory=dict)

    def tile(self, name: str) -> TileReservation:
        return self.tiles.setdefault(name, TileReservation())

    def fits(self, architecture: ArchitectureGraph) -> bool:
        """True when every claim fits the remaining capacity."""
        for name, claim in self.tiles.items():
            tile = architecture.tile(name)
            if claim.time_slice > tile.wheel_remaining:
                return False
            if claim.memory > tile.memory_remaining:
                return False
            if claim.connections > tile.connections_remaining:
                return False
            if claim.bandwidth_in > tile.bandwidth_in_remaining:
                return False
            if claim.bandwidth_out > tile.bandwidth_out_remaining:
                return False
        return True

    def commit(self, architecture: ArchitectureGraph) -> None:
        """Permanently occupy the claimed resources (transactionally).

        Raises :class:`InsufficientResourcesError` (leaving the
        architecture untouched) when anything does not fit.  The commit
        is validate-then-apply: all tiles are resolved and checked
        before the first occupancy field changes, and if applying any
        tile's claim fails part-way the already-applied tiles are
        rolled back, so the architecture is never left half-committed.
        """
        # validate: resolve every tile and check capacity before any write
        resolved = [
            (architecture.tile(name), claim)
            for name, claim in self.tiles.items()
        ]
        if not self.fits(architecture):
            raise InsufficientResourcesError(
                "reservation exceeds remaining capacity"
            )
        applied = 0
        try:
            for index, (tile, claim) in enumerate(resolved):
                fault_point("commit.apply", tile=tile.name, index=index)
                tile.wheel_occupied += claim.time_slice
                tile.memory_occupied += claim.memory
                tile.connections_occupied += claim.connections
                tile.bandwidth_in_occupied += claim.bandwidth_in
                tile.bandwidth_out_occupied += claim.bandwidth_out
                applied += 1
        except BaseException:
            for tile, claim in resolved[:applied]:
                tile.wheel_occupied -= claim.time_slice
                tile.memory_occupied -= claim.memory
                tile.connections_occupied -= claim.connections
                tile.bandwidth_in_occupied -= claim.bandwidth_in
                tile.bandwidth_out_occupied -= claim.bandwidth_out
            raise

    def rollback(self, architecture: ArchitectureGraph) -> None:
        """Release a previously committed reservation."""
        for name, claim in self.tiles.items():
            tile = architecture.tile(name)
            tile.wheel_occupied -= claim.time_slice
            tile.memory_occupied -= claim.memory
            tile.connections_occupied -= claim.connections
            tile.bandwidth_in_occupied -= claim.bandwidth_in
            tile.bandwidth_out_occupied -= claim.bandwidth_out
