"""Tile-based MP-SoC architecture model (paper Section 5).

An :class:`~repro.arch.architecture.ArchitectureGraph` is a set of
:class:`~repro.arch.tile.Tile` objects (processor + local memory +
network interface) connected by fixed-latency point-to-point
:class:`~repro.arch.architecture.Connection` objects.  Tiles track the
resources already granted to earlier applications (the paper's
occupancy function ``Omega`` generalised to all four resource kinds), so
successive allocations see only what is left.
"""

from repro.arch.tile import ProcessorType, Tile
from repro.arch.architecture import ArchitectureGraph, Connection
from repro.arch.resources import ResourceReservation, InsufficientResourcesError
from repro.arch.presets import (
    mesh_architecture,
    benchmark_architectures,
    multimedia_architecture,
)
from repro.arch.serialization import (
    architecture_to_dict,
    architecture_from_dict,
    architecture_to_json,
    architecture_from_json,
)

__all__ = [
    "ProcessorType",
    "Tile",
    "ArchitectureGraph",
    "Connection",
    "ResourceReservation",
    "InsufficientResourcesError",
    "mesh_architecture",
    "benchmark_architectures",
    "multimedia_architecture",
    "architecture_to_dict",
    "architecture_from_dict",
    "architecture_to_json",
    "architecture_from_json",
]
