"""JSON serialisation of architecture graphs.

Schema::

    {
      "name": "...",
      "tiles": [
        {"name": "t1", "processor_type": "p1", "wheel": 10,
         "memory": 700, "max_connections": 5,
         "bandwidth_in": 100, "bandwidth_out": 100,
         "wheel_occupied": 0, ...},
        ...
      ],
      "connections": [{"src": "t1", "dst": "t2", "latency": 1}, ...]
    }

Occupancy fields are optional on input (default: free platform) but
always written, so a partially-allocated platform can be checkpointed
between allocation sessions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile
from repro.sdf.serialization import SerializationError


def architecture_to_dict(architecture: ArchitectureGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary including occupancy."""
    return {
        "name": architecture.name,
        "tiles": [
            {
                "name": tile.name,
                "processor_type": tile.processor_type.name,
                "wheel": tile.wheel,
                "memory": tile.memory,
                "max_connections": tile.max_connections,
                "bandwidth_in": tile.bandwidth_in,
                "bandwidth_out": tile.bandwidth_out,
                "wheel_occupied": tile.wheel_occupied,
                "memory_occupied": tile.memory_occupied,
                "connections_occupied": tile.connections_occupied,
                "bandwidth_in_occupied": tile.bandwidth_in_occupied,
                "bandwidth_out_occupied": tile.bandwidth_out_occupied,
            }
            for tile in architecture.tiles
        ],
        "connections": [
            {
                "src": connection.src,
                "dst": connection.dst,
                "latency": connection.latency,
            }
            for connection in architecture.connections
        ],
    }


def architecture_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> ArchitectureGraph:
    """Inverse of :func:`architecture_to_dict`.

    Raises :class:`~repro.sdf.serialization.SerializationError` (with
    file/field context) for malformed documents.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"architecture document must be a JSON object, "
            f"got {type(data).__name__}",
            source=source,
        )
    architecture = ArchitectureGraph(data.get("name", "architecture"))
    architecture.source = source
    for index, entry in enumerate(data.get("tiles", [])):
        field = f"tiles[{index}]"
        if not isinstance(entry, dict):
            raise SerializationError(
                "tile entry must be an object", source=source, field=field
            )
        try:
            architecture.add_tile(
                Tile(
                    name=entry["name"],
                    processor_type=ProcessorType(entry["processor_type"]),
                    wheel=int(entry["wheel"]),
                    memory=int(entry.get("memory", 0)),
                    max_connections=int(entry.get("max_connections", 0)),
                    bandwidth_in=int(entry.get("bandwidth_in", 0)),
                    bandwidth_out=int(entry.get("bandwidth_out", 0)),
                    wheel_occupied=int(entry.get("wheel_occupied", 0)),
                    memory_occupied=int(entry.get("memory_occupied", 0)),
                    connections_occupied=int(
                        entry.get("connections_occupied", 0)
                    ),
                    bandwidth_in_occupied=int(
                        entry.get("bandwidth_in_occupied", 0)
                    ),
                    bandwidth_out_occupied=int(
                        entry.get("bandwidth_out_occupied", 0)
                    ),
                )
            )
        except KeyError as error:
            raise SerializationError(
                f"tile entry missing key {error}", source=source, field=field
            ) from error
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad tile entry: {error}", source=source, field=field
            ) from error
        architecture.provenance[("tile", entry["name"])] = field
    for index, entry in enumerate(data.get("connections", [])):
        field = f"connections[{index}]"
        try:
            architecture.add_connection(
                entry["src"], entry["dst"], int(entry.get("latency", 1))
            )
        except KeyError as error:
            raise SerializationError(
                f"connection entry missing key {error}",
                source=source,
                field=field,
            ) from error
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad connection entry: {error}", source=source, field=field
            ) from error
        architecture.provenance[
            ("connection", f"{entry['src']}->{entry['dst']}")
        ] = field
    return architecture


def architecture_to_json(
    architecture: ArchitectureGraph, indent: int = 2
) -> str:
    return json.dumps(architecture_to_dict(architecture), indent=indent)


def architecture_from_json(
    text: str, source: Optional[str] = None
) -> ArchitectureGraph:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"invalid JSON: {error}", source=source
        ) from error
    return architecture_from_dict(data, source=source)
