"""JSON serialisation of architecture graphs.

Schema::

    {
      "name": "...",
      "tiles": [
        {"name": "t1", "processor_type": "p1", "wheel": 10,
         "memory": 700, "max_connections": 5,
         "bandwidth_in": 100, "bandwidth_out": 100,
         "wheel_occupied": 0, ...},
        ...
      ],
      "connections": [{"src": "t1", "dst": "t2", "latency": 1}, ...]
    }

Occupancy fields are optional on input (default: free platform) but
always written, so a partially-allocated platform can be checkpointed
between allocation sessions.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile


def architecture_to_dict(architecture: ArchitectureGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary including occupancy."""
    return {
        "name": architecture.name,
        "tiles": [
            {
                "name": tile.name,
                "processor_type": tile.processor_type.name,
                "wheel": tile.wheel,
                "memory": tile.memory,
                "max_connections": tile.max_connections,
                "bandwidth_in": tile.bandwidth_in,
                "bandwidth_out": tile.bandwidth_out,
                "wheel_occupied": tile.wheel_occupied,
                "memory_occupied": tile.memory_occupied,
                "connections_occupied": tile.connections_occupied,
                "bandwidth_in_occupied": tile.bandwidth_in_occupied,
                "bandwidth_out_occupied": tile.bandwidth_out_occupied,
            }
            for tile in architecture.tiles
        ],
        "connections": [
            {
                "src": connection.src,
                "dst": connection.dst,
                "latency": connection.latency,
            }
            for connection in architecture.connections
        ],
    }


def architecture_from_dict(data: Dict[str, Any]) -> ArchitectureGraph:
    """Inverse of :func:`architecture_to_dict`."""
    architecture = ArchitectureGraph(data.get("name", "architecture"))
    for entry in data.get("tiles", []):
        architecture.add_tile(
            Tile(
                name=entry["name"],
                processor_type=ProcessorType(entry["processor_type"]),
                wheel=int(entry["wheel"]),
                memory=int(entry.get("memory", 0)),
                max_connections=int(entry.get("max_connections", 0)),
                bandwidth_in=int(entry.get("bandwidth_in", 0)),
                bandwidth_out=int(entry.get("bandwidth_out", 0)),
                wheel_occupied=int(entry.get("wheel_occupied", 0)),
                memory_occupied=int(entry.get("memory_occupied", 0)),
                connections_occupied=int(
                    entry.get("connections_occupied", 0)
                ),
                bandwidth_in_occupied=int(
                    entry.get("bandwidth_in_occupied", 0)
                ),
                bandwidth_out_occupied=int(
                    entry.get("bandwidth_out_occupied", 0)
                ),
            )
        )
    for entry in data.get("connections", []):
        architecture.add_connection(
            entry["src"], entry["dst"], int(entry.get("latency", 1))
        )
    return architecture


def architecture_to_json(
    architecture: ArchitectureGraph, indent: int = 2
) -> str:
    return json.dumps(architecture_to_dict(architecture), indent=indent)


def architecture_from_json(text: str) -> ArchitectureGraph:
    return architecture_from_dict(json.loads(text))
