"""Tiles and processor types (paper Definition 3).

A tile is the 6-tuple ``(pt, w, m, c, i, o)``: processor type, TDMA
wheel size, memory size (bits), maximum NI connections, and maximum
incoming/outgoing bandwidth (bits per time unit).  On top of the static
capacities a tile tracks what previous applications already occupy, so
that allocating several applications in sequence (the paper's Section 10
flow) is a first-class operation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorType:
    """A named processor type (the set ``PT`` of the paper)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Tile:
    """One tile of the architecture with capacity and occupancy state.

    ``wheel_occupied`` is the paper's ``Omega(t)``: the part of the TDMA
    wheel already granted to other applications.  The other
    ``*_occupied`` fields extend the same idea to memory, NI connections
    and bandwidth so a multi-application flow simply re-uses the tile.
    """

    name: str
    processor_type: ProcessorType
    wheel: int
    memory: int
    max_connections: int
    bandwidth_in: int
    bandwidth_out: int

    wheel_occupied: int = 0
    memory_occupied: int = 0
    connections_occupied: int = 0
    bandwidth_in_occupied: int = 0
    bandwidth_out_occupied: int = 0

    def __post_init__(self) -> None:
        if self.wheel <= 0:
            raise ValueError(f"tile {self.name!r}: wheel size must be positive")
        for label in (
            "memory",
            "max_connections",
            "bandwidth_in",
            "bandwidth_out",
        ):
            if getattr(self, label) < 0:
                raise ValueError(f"tile {self.name!r}: {label} must be >= 0")

    # -- remaining capacities -----------------------------------------
    @property
    def wheel_remaining(self) -> int:
        return self.wheel - self.wheel_occupied

    @property
    def memory_remaining(self) -> int:
        return self.memory - self.memory_occupied

    @property
    def connections_remaining(self) -> int:
        return self.max_connections - self.connections_occupied

    @property
    def bandwidth_in_remaining(self) -> int:
        return self.bandwidth_in - self.bandwidth_in_occupied

    @property
    def bandwidth_out_remaining(self) -> int:
        return self.bandwidth_out - self.bandwidth_out_occupied

    def reset_occupancy(self) -> None:
        """Release everything (used between independent experiments)."""
        self.wheel_occupied = 0
        self.memory_occupied = 0
        self.connections_occupied = 0
        self.bandwidth_in_occupied = 0
        self.bandwidth_out_occupied = 0

    def copy(self) -> "Tile":
        """An independent copy including current occupancy."""
        return Tile(
            self.name,
            self.processor_type,
            self.wheel,
            self.memory,
            self.max_connections,
            self.bandwidth_in,
            self.bandwidth_out,
            self.wheel_occupied,
            self.memory_occupied,
            self.connections_occupied,
            self.bandwidth_in_occupied,
            self.bandwidth_out_occupied,
        )
