"""Ready-made architecture graphs used by the paper's experiments.

* :func:`mesh_architecture` — generic R x C mesh with all-pairs
  connections (a network-on-chip with guaranteed services provides a
  logical point-to-point link between any two tiles; the latency grows
  with the Manhattan distance).
* :func:`benchmark_architectures` — the three 3x3 meshes of §10.1:
  three processor types, equal wheels, differing in memory size and NI
  connection count.
* :func:`multimedia_architecture` — the 2x2 mesh of §10.3 with two
  generic processors and two accelerators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile


def _manhattan(rows: int, cols: int, a: int, b: int) -> int:
    return abs(a // cols - b // cols) + abs(a % cols - b % cols)


def mesh_architecture(
    rows: int,
    cols: int,
    processor_types: Sequence[ProcessorType],
    wheel: int = 100,
    memory: int = 1_000_000,
    max_connections: int = 16,
    bandwidth_in: int = 10_000,
    bandwidth_out: int = 10_000,
    base_latency: int = 2,
    name: Optional[str] = None,
) -> ArchitectureGraph:
    """An ``rows x cols`` mesh with round-robin processor-type assignment.

    Every ordered pair of distinct tiles gets a connection whose latency
    is ``base_latency * manhattan_distance`` (NoC-style: small compared
    to actor execution times, per §10.1).
    """
    if not processor_types:
        raise ValueError("at least one processor type is required")
    architecture = ArchitectureGraph(name or f"mesh{rows}x{cols}")
    count = rows * cols
    for index in range(count):
        architecture.add_tile(
            Tile(
                name=f"t{index}",
                processor_type=processor_types[index % len(processor_types)],
                wheel=wheel,
                memory=memory,
                max_connections=max_connections,
                bandwidth_in=bandwidth_in,
                bandwidth_out=bandwidth_out,
            )
        )
    for a in range(count):
        for b in range(count):
            if a == b:
                continue
            architecture.add_connection(
                f"t{a}", f"t{b}", base_latency * _manhattan(rows, cols, a, b)
            )
    return architecture


def benchmark_architectures(
    wheel: int = 100,
    memories: Sequence[int] = (400_000, 800_000, 1_600_000),
    connection_counts: Sequence[int] = (16, 24, 32),
    bandwidth: int = 10_000,
) -> List[ArchitectureGraph]:
    """The three 3x3 benchmark meshes of §10.1.

    All three share the wheel size, bandwidth and the three processor
    types (``proc_a/b/c`` round-robin over the nine tiles); they differ
    in memory size and number of NI connections.
    """
    if len(memories) != len(connection_counts):
        raise ValueError("memories and connection_counts must align")
    types = [ProcessorType("proc_a"), ProcessorType("proc_b"), ProcessorType("proc_c")]
    architectures = []
    for index, (memory, connections) in enumerate(zip(memories, connection_counts)):
        architectures.append(
            mesh_architecture(
                3,
                3,
                types,
                wheel=wheel,
                memory=memory,
                max_connections=connections,
                bandwidth_in=bandwidth,
                bandwidth_out=bandwidth,
                name=f"mesh3x3-v{index + 1}",
            )
        )
    return architectures


def multimedia_architecture(
    wheel: int = 100,
    memory: int = 4_000_000,
    max_connections: int = 16,
    bandwidth: int = 50_000,
) -> ArchitectureGraph:
    """The 2x2 mesh of §10.3: two generic processors, two accelerators."""
    generic = ProcessorType("generic")
    accelerator = ProcessorType("accelerator")
    architecture = mesh_architecture(
        2,
        2,
        [generic, accelerator, accelerator, generic],
        wheel=wheel,
        memory=memory,
        max_connections=max_connections,
        bandwidth_in=bandwidth,
        bandwidth_out=bandwidth,
        name="mesh2x2-multimedia",
    )
    return architecture
