"""The architecture graph: tiles + fixed-latency connections (Def. 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.tile import ProcessorType, Tile


@dataclass(frozen=True)
class Connection:
    """A directed point-to-point link ``(src, dst)`` with latency ``L``.

    Latency is in time units and must be positive (Definition 4 uses
    ``L : C -> N``).
    """

    src: str
    dst: str
    latency: int

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(
                f"connection {self.src}->{self.dst}: latency must be >= 1"
            )


class ArchitectureGraph:
    """A set of tiles and the connections between them."""

    def __init__(self, name: str = "architecture") -> None:
        self.name = name
        self._tiles: Dict[str, Tile] = {}
        self._connections: Dict[Tuple[str, str], Connection] = {}
        # Parse origin for lint locations, stamped by the serializer
        # (None for API-built architectures).  Keys are ("tile", name)
        # / ("connection", "src->dst").
        self.source: Optional[str] = None
        self.provenance: Dict[Tuple[str, str], str] = {}

    # -- construction ---------------------------------------------------
    def add_tile(self, tile: Tile) -> Tile:
        if tile.name in self._tiles:
            raise ValueError(f"duplicate tile {tile.name!r}")
        self._tiles[tile.name] = tile
        return tile

    def add_connection(self, src: str, dst: str, latency: int = 1) -> Connection:
        if src not in self._tiles:
            raise KeyError(f"unknown tile {src!r}")
        if dst not in self._tiles:
            raise KeyError(f"unknown tile {dst!r}")
        if src == dst:
            raise ValueError("connections link distinct tiles")
        key = (src, dst)
        if key in self._connections:
            raise ValueError(f"duplicate connection {src}->{dst}")
        connection = Connection(src, dst, latency)
        self._connections[key] = connection
        return connection

    # -- queries ----------------------------------------------------------
    @property
    def tiles(self) -> List[Tile]:
        return list(self._tiles.values())

    @property
    def tile_names(self) -> List[str]:
        return list(self._tiles.keys())

    @property
    def connections(self) -> List[Connection]:
        return list(self._connections.values())

    def tile(self, name: str) -> Tile:
        return self._tiles[name]

    def has_tile(self, name: str) -> bool:
        return name in self._tiles

    def connection(self, src: str, dst: str) -> Optional[Connection]:
        """The connection from ``src`` to ``dst``, or None."""
        return self._connections.get((src, dst))

    def connected(self, src: str, dst: str) -> bool:
        return (src, dst) in self._connections

    def processor_types(self) -> List[ProcessorType]:
        """Distinct processor types present, in tile order."""
        seen: Dict[ProcessorType, None] = {}
        for tile in self.tiles:
            seen.setdefault(tile.processor_type)
        return list(seen)

    def tiles_of_type(self, processor_type: ProcessorType) -> List[Tile]:
        return [t for t in self.tiles if t.processor_type == processor_type]

    def __len__(self) -> int:
        return len(self._tiles)

    def __repr__(self) -> str:
        return (
            f"ArchitectureGraph({self.name!r}, tiles={len(self._tiles)}, "
            f"connections={len(self._connections)})"
        )

    # -- lifecycle --------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "ArchitectureGraph":
        """Deep copy including per-tile occupancy."""
        clone = ArchitectureGraph(name or self.name)
        clone.source = self.source
        clone.provenance = dict(self.provenance)
        for tile in self.tiles:
            clone.add_tile(tile.copy())
        for connection in self.connections:
            clone.add_connection(connection.src, connection.dst, connection.latency)
        return clone

    def reset_occupancy(self) -> None:
        for tile in self.tiles:
            tile.reset_occupancy()

    # -- aggregate accounting (Table 5 reporting) ------------------------
    def total_usage(self) -> Dict[str, int]:
        """Summed occupancy of each resource kind over all tiles."""
        usage = {
            "timewheel": 0,
            "memory": 0,
            "connections": 0,
            "input_bw": 0,
            "output_bw": 0,
        }
        for tile in self.tiles:
            usage["timewheel"] += tile.wheel_occupied
            usage["memory"] += tile.memory_occupied
            usage["connections"] += tile.connections_occupied
            usage["input_bw"] += tile.bandwidth_in_occupied
            usage["output_bw"] += tile.bandwidth_out_occupied
        return usage

    def total_capacity(self) -> Dict[str, int]:
        """Summed capacity of each resource kind over all tiles."""
        capacity = {
            "timewheel": 0,
            "memory": 0,
            "connections": 0,
            "input_bw": 0,
            "output_bw": 0,
        }
        for tile in self.tiles:
            capacity["timewheel"] += tile.wheel
            capacity["memory"] += tile.memory
            capacity["connections"] += tile.max_connections
            capacity["input_bw"] += tile.bandwidth_in
            capacity["output_bw"] += tile.bandwidth_out
        return capacity
