"""``repro.analysis`` — rule-based static diagnostics (lint).

Decides, without firing a single actor, whether a model is malformed
or provably doomed: SDF/CSDF structure (``SDF0xx``/``CSD0xx``),
architecture sanity (``ARC0xx``), application-level feasibility against
cheap static throughput bounds (``APP0xx``), and allocation-bundle
integrity (``ALLOC0xx``).  Exposed on the command line as
``repro-alloc lint`` (text/JSON/SARIF output, exit code 6 on errors)
and wired into the allocation flow as a pre-flight gate
(:func:`preflight_check`) that short-circuits statically infeasible
applications before any state-space exploration.

See ``docs/ANALYSIS.md`` for the rule catalogue and output schemas.
"""

from repro.analysis.bounds import (
    minimal_execution_times,
    serialisation_bound,
    static_throughput_bound,
    utilisation_bound,
)
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITY_ORDER,
    WARNING,
    AnalysisReport,
    Diagnostic,
    Location,
)
from repro.analysis.engine import (
    analyse_application,
    analyse_architecture,
    analyse_bundle,
    analyse_csdf,
    analyse_graph,
    preflight_check,
)
from repro.analysis.rules import RULES, Rule, rules_for
from repro.analysis.sarif import SARIF_VERSION, to_sarif
from repro.analysis.source import (
    analyse_source,
    default_source_paths,
    lock_order_graph,
    lock_registry,
)

__all__ = [
    "ERROR",
    "INFO",
    "RULES",
    "SARIF_VERSION",
    "SEVERITY_ORDER",
    "WARNING",
    "AnalysisReport",
    "Diagnostic",
    "Location",
    "Rule",
    "analyse_application",
    "analyse_architecture",
    "analyse_bundle",
    "analyse_csdf",
    "analyse_graph",
    "analyse_source",
    "default_source_paths",
    "lock_order_graph",
    "lock_registry",
    "minimal_execution_times",
    "preflight_check",
    "rules_for",
    "serialisation_bound",
    "static_throughput_bound",
    "to_sarif",
    "utilisation_bound",
]
