"""Cheap static upper bounds on achievable throughput.

The paper's flow decides feasibility by state-space exploration, which
is exact but expensive.  Long before firing a single actor, two
structural arguments already bound what *any* allocation can deliver
(in the spirit of Skelin et al.'s parametric worst-case throughput
analysis); a throughput constraint above either bound is statically
infeasible and the pre-flight gate rejects it with zero states
explored.

Both bounds are *sound*: they use each actor's fastest supported
execution time (``tau_min``), so every committed allocation — whatever
its binding, schedule and slices — satisfies them.

* **Serialisation bound** — every actor is bound to exactly one tile,
  so its firings serialise: in steady state actor ``a`` fires
  ``lambda * gamma(a) / gamma(out)`` times per time unit and each
  firing occupies its tile for at least ``tau_min(a)``, giving
  ``lambda <= gamma(out) / (gamma(a) * tau_min(a))``.  A self-loop
  with ``t`` initial tokens and consumption ``q`` caps the actor's
  concurrent firings at ``t/q`` — since firings serialise on a tile
  anyway this only tightens the bound when ``t < q`` (handled as a
  deadlock by the rules, not here).
* **Utilisation bound** — one graph iteration needs at least
  ``W = sum_a gamma(a) * tau_min(a)`` processor time, and the platform
  supplies at most ``C = sum_t wheel_remaining(t) / wheel(t)``
  processor time per time unit, so
  ``lambda <= gamma(out) * C / W``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph


def minimal_execution_times(
    application: ApplicationGraph,
) -> Dict[str, int]:
    """Per actor, the fastest execution time over its supported types.

    Actors with no supported processor type are omitted (the ``APP001``
    rule reports those; omitting them keeps the bounds sound, merely
    looser).
    """
    times: Dict[str, int] = {}
    for actor, requirements in application.actor_requirements.items():
        if requirements.options:
            times[actor] = min(
                tau for tau, _ in requirements.options.values()
            )
    return times


def serialisation_bound(
    application: ApplicationGraph,
) -> Tuple[Optional[Fraction], Optional[str]]:
    """The per-actor serialisation bound and the limiting actor.

    Returns ``(None, None)`` when no actor has requirements (nothing to
    bound against).
    """
    gamma = application.gamma
    gamma_out = gamma[application.output_actor]
    tau_min = minimal_execution_times(application)
    bound: Optional[Fraction] = None
    limiting: Optional[str] = None
    for actor, tau in tau_min.items():
        if tau < 1:
            continue
        candidate = Fraction(gamma_out, gamma[actor] * tau)
        if bound is None or candidate < bound:
            bound = candidate
            limiting = actor
    return bound, limiting


def utilisation_bound(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
) -> Optional[Fraction]:
    """The platform-capacity bound ``gamma(out) * C / W``.

    ``C`` sums the *remaining* TDMA wheel fraction of every tile, so in
    a multi-application flow the bound tightens as earlier applications
    commit their reservations.  Returns ``None`` when the application
    carries no execution-time requirements.
    """
    gamma = application.gamma
    tau_min = minimal_execution_times(application)
    work = sum(gamma[actor] * tau for actor, tau in tau_min.items())
    if work <= 0:
        return None
    capacity = Fraction(0)
    for tile in architecture.tiles:
        remaining = max(0, tile.wheel_remaining)
        capacity += Fraction(remaining, tile.wheel)
    return Fraction(gamma[application.output_actor]) * capacity / work


def static_throughput_bound(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> Optional[Fraction]:
    """The tightest of the available static bounds (None if unbounded)."""
    bound, _ = serialisation_bound(application)
    if architecture is not None:
        platform = utilisation_bound(application, architecture)
        if platform is not None and (bound is None or platform < bound):
            bound = platform
    return bound
