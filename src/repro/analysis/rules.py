"""The lint rule catalogue (see docs/ANALYSIS.md for the user view).

Every rule is a function taking one model and yielding
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  Rules are
registered in :data:`RULES` with a stable ID, a severity, and a short
title; the engine (:mod:`repro.analysis.engine`) groups them by the
model kind they apply to.

Rule IDs are stable API: baselines, ``--select/--ignore`` filters and
SARIF consumers key on them.  Never renumber; retire by deletion.

* ``SDF0xx`` — SDF graph structure (consistency, deadlock, dead
  actors, self-loop concurrency, connectivity)
* ``CSD0xx`` — CSDF graph structure
* ``ARC0xx`` — architecture graphs (isolated tiles, dead links,
  exhausted wheels)
* ``APP0xx`` — application graphs, optionally against a platform
  (missing Γ entries, statically infeasible throughput constraints)
* ``ALLOC0xx`` — allocation bundles in their plain-dict form
  (oversubscribed wheels, static-order coverage)

Locations come from the ``source``/``provenance`` attributes the
serializers stamp onto models; models built through the API fall back
to element-only locations.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis.bounds import serialisation_bound, utilisation_bound
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Location,
)
from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph
from repro.csdf.graph import CSDFGraph
from repro.sdf.analysis import undirected_components
from repro.sdf.graph import SDFGraph


def _location(model: Any, kind: str, name: str, element: str) -> Location:
    """A location for element ``(kind, name)`` of ``model``.

    Uses the ``source``/``provenance`` attributes serializers stamp on
    parsed models; API-built models get element-only locations.
    """
    provenance = getattr(model, "provenance", None) or {}
    return Location(
        source=getattr(model, "source", None),
        field=provenance.get((kind, name)),
        element=element,
    )


# ---------------------------------------------------------------------------
# SDF graph rules


def _rate_conflicts(graph: SDFGraph) -> List[str]:
    """Channel names whose balance equation contradicts earlier ones.

    Re-derives the fractional repetition vector the way
    :func:`repro.sdf.repetition.repetition_vector` does, but instead of
    raising on the first contradiction it records the conflicting
    channel and moves on to the next weakly-connected component, so one
    lint run reports every inconsistent component.
    """
    conflicts: List[str] = []
    fractional: Dict[str, Fraction] = {}
    for seed in graph.actor_names:
        if seed in fractional:
            continue
        fractional[seed] = Fraction(1)
        stack = [seed]
        clean = True
        while stack and clean:
            actor = stack.pop()
            rate = fractional[actor]
            for channel in graph.out_channels(actor):
                implied = rate * channel.production / channel.consumption
                known = fractional.get(channel.dst)
                if known is None:
                    fractional[channel.dst] = implied
                    stack.append(channel.dst)
                elif known != implied:
                    conflicts.append(channel.name)
                    clean = False
                    break
            if not clean:
                break
            for channel in graph.in_channels(actor):
                implied = rate * channel.consumption / channel.production
                known = fractional.get(channel.src)
                if known is None:
                    fractional[channel.src] = implied
                    stack.append(channel.src)
                elif known != implied:
                    conflicts.append(channel.name)
                    clean = False
                    break
        if not clean:
            # mark the rest of the component visited without deriving
            # further rates, so later components start fresh
            while stack:
                actor = stack.pop()
                for channel in graph.out_channels(actor):
                    if channel.dst not in fractional:
                        fractional[channel.dst] = Fraction(1)
                        stack.append(channel.dst)
                for channel in graph.in_channels(actor):
                    if channel.src not in fractional:
                        fractional[channel.src] = Fraction(1)
                        stack.append(channel.src)
    return conflicts


def sdf001_inconsistent_rates(graph: SDFGraph) -> Iterator[Diagnostic]:
    """SDF001: the balance equations admit no repetition vector."""
    for channel_name in _rate_conflicts(graph):
        channel = graph.channel(channel_name)
        yield Diagnostic(
            "SDF001",
            ERROR,
            f"inconsistent rates: channel {channel_name!r} "
            f"({channel.src} -> {channel.dst}, "
            f"{channel.production}/{channel.consumption}) contradicts the "
            f"rates derived from the rest of its component",
            _location(graph, "channel", channel_name, f"channel {channel_name!r}"),
            hint="balance p * gamma(src) = q * gamma(dst) on every channel",
        )


def sdf002_structural_deadlock(graph: SDFGraph) -> Iterator[Diagnostic]:
    """SDF002: one iteration cannot execute from the initial tokens.

    Skipped for inconsistent graphs (SDF001 already fired and a
    repetition vector does not exist).  The witness names the actors
    that still owe firings when execution stalls.
    """
    from repro.sdf.repetition import (
        InconsistentGraphError,
        repetition_vector,
    )

    try:
        gamma = repetition_vector(graph)
    except InconsistentGraphError:
        return
    remaining = dict(gamma)
    tokens = {c.name: c.tokens for c in graph.channels}
    pending = [a for a in graph.actor_names if remaining[a] > 0]

    def enabled(actor: str) -> bool:
        return all(
            tokens[c.name] >= c.consumption for c in graph.in_channels(actor)
        )

    progressed = True
    while progressed:
        progressed = False
        still_pending: List[str] = []
        for actor in pending:
            fired = False
            while remaining[actor] > 0 and enabled(actor):
                for channel in graph.in_channels(actor):
                    tokens[channel.name] -= channel.consumption
                for channel in graph.out_channels(actor):
                    tokens[channel.name] += channel.production
                remaining[actor] -= 1
                fired = True
            if fired:
                progressed = True
            if remaining[actor] > 0:
                still_pending.append(actor)
        pending = still_pending
    if pending:
        witness = ", ".join(pending[:5])
        if len(pending) > 5:
            witness += f", ... ({len(pending) - 5} more)"
        yield Diagnostic(
            "SDF002",
            ERROR,
            f"structural deadlock: one iteration stalls with firings "
            f"still owed by {witness}",
            _location(graph, "graph", graph.name, f"graph {graph.name!r}"),
            hint="add initial tokens on a cycle channel to break the deadlock",
        )


def sdf003_dead_actor(graph: SDFGraph) -> Iterator[Diagnostic]:
    """SDF003: an actor with no incident channels in a multi-actor graph."""
    if len(graph) <= 1:
        return
    for actor in graph.actor_names:
        if not graph.out_channels(actor) and not graph.in_channels(actor):
            yield Diagnostic(
                "SDF003",
                WARNING,
                f"dead actor: {actor!r} has no incident channels and "
                f"cannot exchange data with the rest of the graph",
                _location(graph, "actor", actor, f"actor {actor!r}"),
                hint="connect the actor or drop it from the graph",
            )


def sdf004_starved_self_loop(graph: SDFGraph) -> Iterator[Diagnostic]:
    """SDF004: a self-loop with fewer initial tokens than it consumes."""
    for channel in graph.channels:
        if channel.is_self_loop and channel.tokens < channel.consumption:
            yield Diagnostic(
                "SDF004",
                ERROR,
                f"starved self-loop: channel {channel.name!r} on actor "
                f"{channel.src!r} holds {channel.tokens} token(s) but each "
                f"firing consumes {channel.consumption}; the actor can "
                f"never fire",
                _location(
                    graph, "channel", channel.name, f"channel {channel.name!r}"
                ),
                hint=f"give the self-loop at least {channel.consumption} "
                f"initial token(s)",
            )


def sdf005_serialised_self_loop(graph: SDFGraph) -> Iterator[Diagnostic]:
    """SDF005: a self-loop admitting exactly one concurrent firing."""
    for channel in graph.channels:
        if (
            channel.is_self_loop
            and channel.consumption <= channel.tokens
            and channel.tokens // channel.consumption == 1
        ):
            yield Diagnostic(
                "SDF005",
                INFO,
                f"self-loop {channel.name!r} serialises actor "
                f"{channel.src!r}: its token budget admits exactly one "
                f"firing at a time (auto-concurrency disabled)",
                _location(
                    graph, "channel", channel.name, f"channel {channel.name!r}"
                ),
            )


def sdf006_disconnected(graph: SDFGraph) -> Iterator[Diagnostic]:
    """SDF006: the graph splits into independent weak components."""
    components = undirected_components(graph)
    if len(components) <= 1:
        return
    sizes = ", ".join(str(len(c)) for c in components)
    yield Diagnostic(
        "SDF006",
        WARNING,
        f"graph is not connected: {len(components)} independent "
        f"components (sizes {sizes}); throughput analysis treats them "
        f"as one application",
        _location(graph, "graph", graph.name, f"graph {graph.name!r}"),
        hint="split independent components into separate applications",
    )


# ---------------------------------------------------------------------------
# CSDF graph rules


def _csdf_rate_conflicts(graph: CSDFGraph) -> List[str]:
    """Channel names violating the cycle-level CSDF balance equations."""
    conflicts: List[str] = []
    fractional: Dict[str, Fraction] = {}
    for seed in graph.actor_names:
        if seed in fractional:
            continue
        fractional[seed] = Fraction(1)
        stack = [seed]
        clean = True
        while stack and clean:
            actor = stack.pop()
            rate = fractional[actor]
            for channel in graph.out_channels(actor):
                implied = (
                    rate * channel.total_production / channel.total_consumption
                )
                known = fractional.get(channel.dst)
                if known is None:
                    fractional[channel.dst] = implied
                    stack.append(channel.dst)
                elif known != implied:
                    conflicts.append(channel.name)
                    clean = False
                    break
            if not clean:
                break
            for channel in graph.in_channels(actor):
                implied = (
                    rate * channel.total_consumption / channel.total_production
                )
                known = fractional.get(channel.src)
                if known is None:
                    fractional[channel.src] = implied
                    stack.append(channel.src)
                elif known != implied:
                    conflicts.append(channel.name)
                    clean = False
                    break
        if not clean:
            while stack:
                actor = stack.pop()
                for channel in graph.out_channels(actor):
                    if channel.dst not in fractional:
                        fractional[channel.dst] = Fraction(1)
                        stack.append(channel.dst)
                for channel in graph.in_channels(actor):
                    if channel.src not in fractional:
                        fractional[channel.src] = Fraction(1)
                        stack.append(channel.src)
    return conflicts


def csd001_inconsistent_rates(graph: CSDFGraph) -> Iterator[Diagnostic]:
    """CSD001: the cycle-level balance equations have no solution."""
    for channel_name in _csdf_rate_conflicts(graph):
        channel = graph.channel(channel_name)
        yield Diagnostic(
            "CSD001",
            ERROR,
            f"inconsistent rates: channel {channel_name!r} "
            f"({channel.src} -> {channel.dst}, cycle totals "
            f"{channel.total_production}/{channel.total_consumption}) "
            f"contradicts the rates derived from the rest of its component",
            _location(graph, "channel", channel_name, f"channel {channel_name!r}"),
            hint="balance total_production * gamma(src) = "
            "total_consumption * gamma(dst) on every channel",
        )


def csd002_structural_deadlock(graph: CSDFGraph) -> Iterator[Diagnostic]:
    """CSD002: one phase-accurate iteration stalls.

    Skipped for inconsistent graphs (CSD001 already fired).
    """
    from repro.csdf.analysis import (
        InconsistentCSDFError,
        csdf_repetition_vector,
    )

    try:
        remaining = csdf_repetition_vector(graph)
    except InconsistentCSDFError:
        return
    tokens = {c.name: c.tokens for c in graph.channels}
    fired: Dict[str, int] = {a: 0 for a in graph.actor_names}

    def enabled(actor: str) -> bool:
        phase = fired[actor] % graph.actor(actor).phase_count
        return all(
            tokens[c.name] >= c.consumptions[phase]
            for c in graph.in_channels(actor)
        )

    progressed = True
    pending = [a for a in graph.actor_names if remaining[a] > 0]
    while progressed:
        progressed = False
        still_pending: List[str] = []
        for actor in pending:
            moved = False
            while remaining[actor] > 0 and enabled(actor):
                phase = fired[actor] % graph.actor(actor).phase_count
                for channel in graph.in_channels(actor):
                    tokens[channel.name] -= channel.consumptions[phase]
                for channel in graph.out_channels(actor):
                    tokens[channel.name] += channel.productions[phase]
                fired[actor] += 1
                remaining[actor] -= 1
                moved = True
            if moved:
                progressed = True
            if remaining[actor] > 0:
                still_pending.append(actor)
        pending = still_pending
    if pending:
        witness = ", ".join(pending[:5])
        if len(pending) > 5:
            witness += f", ... ({len(pending) - 5} more)"
        yield Diagnostic(
            "CSD002",
            ERROR,
            f"structural deadlock: one phase-accurate iteration stalls "
            f"with firings still owed by {witness}",
            _location(graph, "graph", graph.name, f"graph {graph.name!r}"),
            hint="add initial tokens on a cycle channel to break the deadlock",
        )


def csd003_dead_actor(graph: CSDFGraph) -> Iterator[Diagnostic]:
    """CSD003: an actor with no incident channels in a multi-actor graph."""
    if len(graph) <= 1:
        return
    for actor in graph.actor_names:
        if not graph.out_channels(actor) and not graph.in_channels(actor):
            yield Diagnostic(
                "CSD003",
                WARNING,
                f"dead actor: {actor!r} has no incident channels and "
                f"cannot exchange data with the rest of the graph",
                _location(graph, "actor", actor, f"actor {actor!r}"),
                hint="connect the actor or drop it from the graph",
            )


# ---------------------------------------------------------------------------
# Architecture rules


def arc001_isolated_tile(
    architecture: ArchitectureGraph,
) -> Iterator[Diagnostic]:
    """ARC001: a tile no connection reaches or leaves (multi-tile only).

    Applications whose channels must cross tiles can never span such a
    tile, so bindings that use it are confined to local channels.
    """
    if len(architecture) <= 1:
        return
    linked = set()
    for connection in architecture.connections:
        linked.add(connection.src)
        linked.add(connection.dst)
    for tile in architecture.tiles:
        if tile.name not in linked:
            yield Diagnostic(
                "ARC001",
                WARNING,
                f"isolated tile: {tile.name!r} has no connection to or "
                f"from any other tile; only fully-local bindings can "
                f"use it",
                _location(
                    architecture, "tile", tile.name, f"tile {tile.name!r}"
                ),
                hint="add connections or drop the tile",
            )


def arc002_dead_connection(
    architecture: ArchitectureGraph,
) -> Iterator[Diagnostic]:
    """ARC002: a connection whose endpoint has zero bandwidth capacity."""
    for connection in architecture.connections:
        key = f"{connection.src}->{connection.dst}"
        src_out = architecture.tile(connection.src).bandwidth_out
        dst_in = architecture.tile(connection.dst).bandwidth_in
        if src_out == 0 or dst_in == 0:
            culprit = (
                f"{connection.src!r} has no outgoing bandwidth"
                if src_out == 0
                else f"{connection.dst!r} has no incoming bandwidth"
            )
            yield Diagnostic(
                "ARC002",
                WARNING,
                f"dead connection {key}: tile {culprit}, so no channel "
                f"can ever be mapped onto this link",
                _location(architecture, "connection", key, f"connection {key}"),
                hint="raise the tile's bandwidth or remove the connection",
            )


def arc003_exhausted_tile(
    architecture: ArchitectureGraph,
) -> Iterator[Diagnostic]:
    """ARC003: a tile whose TDMA wheel is fully occupied."""
    for tile in architecture.tiles:
        if tile.wheel_remaining < 1:
            yield Diagnostic(
                "ARC003",
                WARNING,
                f"exhausted tile: {tile.name!r} has "
                f"{tile.wheel_occupied}/{tile.wheel} wheel units occupied; "
                f"no further time slice can be allocated on it",
                _location(
                    architecture, "tile", tile.name, f"tile {tile.name!r}"
                ),
            )


# ---------------------------------------------------------------------------
# Application rules


def app001_no_processor_type(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> Iterator[Diagnostic]:
    """APP001: an actor with an empty Γ (no supported processor type)."""
    for actor, requirements in application.actor_requirements.items():
        if not requirements.options:
            yield Diagnostic(
                "APP001",
                ERROR,
                f"actor {actor!r} has no Γ entry: no processor type can "
                f"run it, so no binding exists",
                _app_actor_location(application, actor),
                hint="declare at least one (processor type, time, memory) "
                "option for the actor",
            )


def app002_constraint_exceeds_serial_bound(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> Iterator[Diagnostic]:
    """APP002: the throughput constraint beats the serialisation bound.

    The bound (see :mod:`repro.analysis.bounds`) holds for every
    possible allocation, so exceeding it is statically infeasible — no
    state-space exploration required.
    """
    constraint = Fraction(application.throughput_constraint)
    if constraint <= 0:
        return
    bound, limiting = serialisation_bound(application)
    if bound is not None and constraint > bound:
        yield Diagnostic(
            "APP002",
            ERROR,
            f"throughput constraint {constraint} exceeds the static "
            f"serialisation bound {bound} set by actor {limiting!r} "
            f"(firings serialise on whichever tile it is bound to)",
            _app_location(
                application, "throughput_constraint", "throughput constraint"
            ),
            hint=f"relax the constraint to at most {bound} or speed up "
            f"actor {limiting!r}",
        )


def app003_constraint_exceeds_capacity(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> Iterator[Diagnostic]:
    """APP003: the constraint beats the platform's utilisation bound."""
    if architecture is None:
        return
    constraint = Fraction(application.throughput_constraint)
    if constraint <= 0:
        return
    bound = utilisation_bound(application, architecture)
    if bound is not None and constraint > bound:
        yield Diagnostic(
            "APP003",
            ERROR,
            f"throughput constraint {constraint} exceeds the platform "
            f"utilisation bound {bound}: the remaining TDMA capacity of "
            f"{architecture.name!r} cannot supply one iteration's work "
            f"at that rate",
            _app_location(
                application, "throughput_constraint", "throughput constraint"
            ),
            hint=f"relax the constraint to at most {bound}, free wheel "
            f"capacity, or add tiles",
        )


def app004_unsupported_on_platform(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> Iterator[Diagnostic]:
    """APP004: an actor supports only processor types the platform lacks."""
    if architecture is None:
        return
    available = set(architecture.processor_types())
    for actor, requirements in application.actor_requirements.items():
        supported = set(requirements.supported_types)
        if supported and not (supported & available):
            names = ", ".join(sorted(t.name for t in supported))
            yield Diagnostic(
                "APP004",
                ERROR,
                f"actor {actor!r} supports only processor type(s) "
                f"[{names}] but architecture {architecture.name!r} "
                f"provides none of them",
                _app_actor_location(application, actor),
                hint="add a supported tile type to the platform or a Γ "
                "option for an available type",
            )


def app005_uncrossable_channel(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> Iterator[Diagnostic]:
    """APP005: a zero-bandwidth channel whose endpoints can never co-locate.

    A channel with ``beta = 0`` must stay inside one tile, but when its
    endpoint actors share no supported processor type no single tile
    can host both — the binding problem is infeasible regardless of the
    platform's size.
    """
    for name, theta in application.channel_requirements.items():
        if theta.crossable:
            continue
        channel = application.graph.channel(name)
        if channel.is_self_loop:
            continue
        src_types = set(
            application.actor_requirements[channel.src].supported_types
        )
        dst_types = set(
            application.actor_requirements[channel.dst].supported_types
        )
        if src_types and dst_types and not (src_types & dst_types):
            yield Diagnostic(
                "APP005",
                ERROR,
                f"channel {name!r} has zero bandwidth (must stay inside "
                f"one tile) but actors {channel.src!r} and {channel.dst!r} "
                f"share no supported processor type, so they can never "
                f"be co-located",
                _app_channel_location(application, name),
                hint="give the channel bandwidth or add a common "
                "processor type to both actors",
            )


def _app_location(
    application: ApplicationGraph, field_key: str, element: str
) -> Location:
    provenance = getattr(application, "provenance", None) or {}
    return Location(
        source=getattr(application, "source", None),
        field=provenance.get(("application", field_key)),
        element=element,
    )


def _app_actor_location(application: ApplicationGraph, actor: str) -> Location:
    """Prefer the application's Γ field, else the graph's actor entry."""
    provenance = getattr(application, "provenance", None) or {}
    field = provenance.get(("requirements", actor))
    if field is None:
        graph_provenance = getattr(application.graph, "provenance", None) or {}
        field = graph_provenance.get(("actor", actor))
    return Location(
        source=getattr(application, "source", None)
        or getattr(application.graph, "source", None),
        field=field,
        element=f"actor {actor!r}",
    )


def _app_channel_location(
    application: ApplicationGraph, channel: str
) -> Location:
    provenance = getattr(application, "provenance", None) or {}
    field = provenance.get(("requirements", channel))
    if field is None:
        graph_provenance = getattr(application.graph, "provenance", None) or {}
        field = graph_provenance.get(("channel", channel))
    return Location(
        source=getattr(application, "source", None)
        or getattr(application.graph, "source", None),
        field=field,
        element=f"channel {channel!r}",
    )


# ---------------------------------------------------------------------------
# Allocation bundle rules (plain-dict form, like repro.verify)


def _bundle_location(source: Optional[str], field: str, element: str) -> Location:
    return Location(source=source, field=field, element=element)


def alloc001_wheel_oversubscribed(
    bundle: Dict[str, Any], source: Optional[str] = None
) -> Iterator[Diagnostic]:
    """ALLOC001: committed time slices exceed a tile's TDMA wheel.

    Checks each allocation's slice against the wheel capacity and the
    *sum* of all allocations' claims per tile against wheel capacity
    (the flow commits allocations cumulatively).
    """
    wheels: Dict[str, int] = {}
    for tile in bundle.get("architecture", {}).get("tiles", []):
        if isinstance(tile, dict) and "name" in tile:
            wheels[tile["name"]] = int(tile.get("wheel", 0))
    claimed: Dict[str, int] = {}
    for index, allocation in enumerate(bundle.get("allocations", [])):
        for tile_name, entry in allocation.get("reservation", {}).items():
            time_slice = int(entry.get("time_slice", 0))
            claimed[tile_name] = claimed.get(tile_name, 0) + time_slice
            wheel = wheels.get(tile_name)
            if wheel is not None and time_slice > wheel:
                yield Diagnostic(
                    "ALLOC001",
                    ERROR,
                    f"allocation #{index} claims a time slice of "
                    f"{time_slice} on tile {tile_name!r}, exceeding its "
                    f"TDMA wheel of {wheel}",
                    _bundle_location(
                        source,
                        f"allocations[{index}].reservation[{tile_name}]",
                        f"tile {tile_name!r}",
                    ),
                )
    for tile_name, total in claimed.items():
        wheel = wheels.get(tile_name)
        if wheel is not None and total > wheel:
            yield Diagnostic(
                "ALLOC001",
                ERROR,
                f"the bundle's allocations together claim {total} wheel "
                f"units on tile {tile_name!r}, exceeding its TDMA wheel "
                f"of {wheel}",
                _bundle_location(
                    source, "allocations", f"tile {tile_name!r}"
                ),
                hint="re-run the flow; the bundle was not produced by "
                "committing allocations in sequence",
            )


def alloc002_schedule_coverage(
    bundle: Dict[str, Any], source: Optional[str] = None
) -> Iterator[Diagnostic]:
    """ALLOC002: static-order schedules disagree with the binding.

    Every actor bound to a tile must appear in that tile's periodic
    static-order schedule and vice versa.  Allocations without any
    schedules (pure TDMA baselines) are skipped.
    """
    for index, allocation in enumerate(bundle.get("allocations", [])):
        schedules = allocation.get("schedules", {})
        if not schedules:
            continue
        binding = allocation.get("binding", {})
        bound: Dict[str, set] = {}
        for actor, tile_name in binding.items():
            bound.setdefault(tile_name, set()).add(actor)
        for tile_name, entry in schedules.items():
            scheduled = set(entry.get("periodic", []))
            expected = bound.get(tile_name, set())
            missing = expected - scheduled
            extra = scheduled - expected
            if missing:
                yield Diagnostic(
                    "ALLOC002",
                    ERROR,
                    f"allocation #{index}: actors {sorted(missing)} are "
                    f"bound to tile {tile_name!r} but absent from its "
                    f"periodic static-order schedule",
                    _bundle_location(
                        source,
                        f"allocations[{index}].schedules[{tile_name}]",
                        f"tile {tile_name!r}",
                    ),
                )
            if extra:
                yield Diagnostic(
                    "ALLOC002",
                    ERROR,
                    f"allocation #{index}: schedule of tile {tile_name!r} "
                    f"lists actors {sorted(extra)} that are not bound to "
                    f"it",
                    _bundle_location(
                        source,
                        f"allocations[{index}].schedules[{tile_name}]",
                        f"tile {tile_name!r}",
                    ),
                )
        for tile_name, expected in bound.items():
            if expected and tile_name not in schedules:
                yield Diagnostic(
                    "ALLOC002",
                    ERROR,
                    f"allocation #{index}: tile {tile_name!r} has bound "
                    f"actors {sorted(expected)} but no static-order "
                    f"schedule",
                    _bundle_location(
                        source,
                        f"allocations[{index}].schedules",
                        f"tile {tile_name!r}",
                    ),
                )


def alloc003_unknown_tile(
    bundle: Dict[str, Any], source: Optional[str] = None
) -> Iterator[Diagnostic]:
    """ALLOC003: a binding or reservation references an undeclared tile."""
    known = {
        tile["name"]
        for tile in bundle.get("architecture", {}).get("tiles", [])
        if isinstance(tile, dict) and "name" in tile
    }
    for index, allocation in enumerate(bundle.get("allocations", [])):
        for actor, tile_name in allocation.get("binding", {}).items():
            if tile_name not in known:
                yield Diagnostic(
                    "ALLOC003",
                    ERROR,
                    f"allocation #{index} binds actor {actor!r} to tile "
                    f"{tile_name!r}, which the bundle's architecture does "
                    f"not declare",
                    _bundle_location(
                        source,
                        f"allocations[{index}].binding[{actor}]",
                        f"tile {tile_name!r}",
                    ),
                )
        for tile_name in allocation.get("reservation", {}):
            if tile_name not in known:
                yield Diagnostic(
                    "ALLOC003",
                    ERROR,
                    f"allocation #{index} reserves resources on tile "
                    f"{tile_name!r}, which the bundle's architecture does "
                    f"not declare",
                    _bundle_location(
                        source,
                        f"allocations[{index}].reservation[{tile_name}]",
                        f"tile {tile_name!r}",
                    ),
                )


# ---------------------------------------------------------------------------
# The registry


class Rule:
    """One registered rule: stable ID, severity, kind, and checker."""

    def __init__(
        self, rule_id: str, severity: str, kind: str, title: str, check: Any
    ) -> None:
        self.rule_id = rule_id
        self.severity = severity
        self.kind = kind
        self.title = title
        self.check = check


#: Every rule, in catalogue order.  ``kind`` selects the model the
#: engine feeds the rule: ``sdf``, ``csdf``, ``arch``, ``app`` (takes
#: ``(application, architecture)``) or ``bundle`` (takes
#: ``(bundle_dict, source)``).
RULES: Tuple[Rule, ...] = (
    Rule("SDF001", ERROR, "sdf", "inconsistent rates", sdf001_inconsistent_rates),
    Rule("SDF002", ERROR, "sdf", "structural deadlock", sdf002_structural_deadlock),
    Rule("SDF003", WARNING, "sdf", "dead actor", sdf003_dead_actor),
    Rule("SDF004", ERROR, "sdf", "starved self-loop", sdf004_starved_self_loop),
    Rule("SDF005", INFO, "sdf", "serialised self-loop", sdf005_serialised_self_loop),
    Rule("SDF006", WARNING, "sdf", "disconnected graph", sdf006_disconnected),
    Rule("CSD001", ERROR, "csdf", "inconsistent rates", csd001_inconsistent_rates),
    Rule("CSD002", ERROR, "csdf", "structural deadlock", csd002_structural_deadlock),
    Rule("CSD003", WARNING, "csdf", "dead actor", csd003_dead_actor),
    Rule("ARC001", WARNING, "arch", "isolated tile", arc001_isolated_tile),
    Rule("ARC002", WARNING, "arch", "dead connection", arc002_dead_connection),
    Rule("ARC003", WARNING, "arch", "exhausted tile", arc003_exhausted_tile),
    Rule("APP001", ERROR, "app", "actor without Γ entry", app001_no_processor_type),
    Rule(
        "APP002",
        ERROR,
        "app",
        "constraint exceeds serialisation bound",
        app002_constraint_exceeds_serial_bound,
    ),
    Rule(
        "APP003",
        ERROR,
        "app",
        "constraint exceeds platform capacity",
        app003_constraint_exceeds_capacity,
    ),
    Rule(
        "APP004",
        ERROR,
        "app",
        "actor unsupported on platform",
        app004_unsupported_on_platform,
    ),
    Rule(
        "APP005",
        ERROR,
        "app",
        "uncrossable channel cannot co-locate",
        app005_uncrossable_channel,
    ),
    Rule(
        "ALLOC001",
        ERROR,
        "bundle",
        "TDMA wheel oversubscribed",
        alloc001_wheel_oversubscribed,
    ),
    Rule(
        "ALLOC002",
        ERROR,
        "bundle",
        "static-order schedule coverage",
        alloc002_schedule_coverage,
    ),
    Rule(
        "ALLOC003",
        ERROR,
        "bundle",
        "unknown tile referenced",
        alloc003_unknown_tile,
    ),
    # Concurrency rules over the repository's own source.  ``kind``
    # "source" is not dispatched by the model engine — the checks live
    # in :mod:`repro.analysis.source`, which looks its severities up
    # here so the catalogue (and the SARIF rule metadata) stays the
    # single source of truth.
    Rule(
        "CON001",
        ERROR,
        "source",
        "guarded attribute accessed without its lock",
        None,
    ),
    Rule(
        "CON002",
        WARNING,
        "source",
        "guarded mutable state escapes by reference",
        None,
    ),
    Rule(
        "CON003",
        WARNING,
        "source",
        "blocking call while holding a lock",
        None,
    ),
    Rule(
        "CON004",
        ERROR,
        "source",
        "lock-order cycle (potential deadlock)",
        None,
    ),
)


def rules_for(kind: str) -> List[Rule]:
    """The registered rules applying to one model kind."""
    return [rule for rule in RULES if rule.kind == kind]
