"""Diagnostic records produced by the static analysis engine.

A :class:`Diagnostic` is one finding of one rule: a stable rule ID
(``SDF001``, ``ARC002``, ...), a severity, a human message, a
:class:`Location` threaded from the serializers' file/field context,
and an optional fix-it hint.  An :class:`AnalysisReport` is an ordered
collection of diagnostics with the filtering operations the ``lint``
command exposes (``--select`` / ``--ignore`` / ``--baseline``).

Severities follow the usual lint ladder:

* ``error`` — the model is malformed or provably doomed: no resource
  allocation can exist.  ``repro-alloc lint`` exits 6 when any error
  survives filtering, and the flow pre-flight gate rejects the
  application without exploring a single state.
* ``warning`` — suspicious but not fatal (a dead actor, an isolated
  tile): allocation may still succeed.
* ``info`` — noteworthy structure (a concurrency-limiting self-loop).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: ordering for "worst finding" style queries (lower sorts worse)
SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    ``source`` is the file the model was parsed from (None for models
    built through the API), ``field`` the serializer field within that
    file (``"channels[2]"``, ``"tiles[0]"``), and ``element`` the
    model-level element (``"channel 'd2'"``) that is meaningful even
    without a file.
    """

    source: Optional[str] = None
    field: Optional[str] = None
    element: Optional[str] = None

    def render(self) -> str:
        """Compact human form: ``file:field (element)`` with gaps elided."""
        origin = ":".join(p for p in (self.source, self.field) if p)
        if origin and self.element:
            return f"{origin} ({self.element})"
        return origin or self.element or "<model>"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if self.source is not None:
            payload["source"] = self.source
        if self.field is not None:
            payload["field"] = self.field
        if self.element is not None:
            payload["element"] = self.element
        return payload


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule."""

    rule_id: str
    severity: str
    message: str
    location: Location = field(default_factory=Location)
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITY_ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Stable identity used by ``--baseline`` suppression files.

        Deliberately excludes the message text so reworded messages do
        not invalidate a baseline; includes rule, file and element so
        the same defect in two places yields two fingerprints.
        """
        basis = "|".join(
            (
                self.rule_id,
                self.location.source or "",
                self.location.field or "",
                self.location.element or "",
            )
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        text = (
            f"{self.location.render()}: {self.severity} "
            f"{self.rule_id}: {self.message}"
        )
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "location": self.location.to_dict(),
            "fingerprint": self.fingerprint,
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload


class AnalysisReport:
    """An ordered collection of diagnostics with lint-style filtering."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # -- collection ----------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        """A new report holding this report's findings then ``other``'s."""
        return AnalysisReport(self.diagnostics + other.diagnostics)

    # -- queries -------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        totals = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self.diagnostics:
            totals[diagnostic.severity] += 1
        return totals

    def summary(self) -> str:
        """One line naming the worst finding (empty when clean)."""
        if not self.diagnostics:
            return ""
        worst = min(
            self.diagnostics, key=lambda d: SEVERITY_ORDER[d.severity]
        )
        more = len(self.diagnostics) - 1
        suffix = f" (+{more} more finding{'s' if more != 1 else ''})" if more else ""
        return f"{worst.rule_id}: {worst.message}{suffix}"

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    # -- filtering (the CLI's --select / --ignore / --baseline) --------
    def select(self, prefixes: Sequence[str]) -> "AnalysisReport":
        """Keep only findings whose rule ID starts with any prefix."""
        prefixes = tuple(prefixes)
        return AnalysisReport(
            d for d in self.diagnostics if d.rule_id.startswith(prefixes)
        )

    def ignore(self, prefixes: Sequence[str]) -> "AnalysisReport":
        """Drop findings whose rule ID starts with any prefix."""
        prefixes = tuple(prefixes)
        if not prefixes:
            return AnalysisReport(self.diagnostics)
        return AnalysisReport(
            d for d in self.diagnostics if not d.rule_id.startswith(prefixes)
        )

    def without(self, fingerprints: Iterable[str]) -> "AnalysisReport":
        """Drop findings whose fingerprint is in ``fingerprints``."""
        suppressed = set(fingerprints)
        return AnalysisReport(
            d for d in self.diagnostics if d.fingerprint not in suppressed
        )

    # -- rendering -----------------------------------------------------
    def render_text(self) -> str:
        """The human report: one line per finding plus a totals line."""
        lines = [d.render() for d in self.diagnostics]
        totals = self.counts()
        lines.append(
            f"{totals[ERROR]} error(s), {totals[WARNING]} warning(s), "
            f"{totals[INFO]} info"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON report schema (``repro-alloc lint --format json``)."""
        return {
            "format": "repro-lint-report",
            "version": 1,
            "findings": [d.to_dict() for d in self.diagnostics],
            "summary": self.counts(),
        }
