"""Concurrency static analysis over the repository's own source.

While the rest of :mod:`repro.analysis` lints *models* (dataflow
graphs, architectures, allocation bundles), this module lints the
*implementation*: the threaded service plane itself.  It parses the
``repro`` sources with :mod:`ast`, reads the declarative lock
discipline out of trailing comments, and emits ordinary
:class:`~repro.analysis.diagnostics.Diagnostic` records through the
same report/SARIF/baseline machinery the model rules use
(``repro-alloc lint --source``).

The discipline is declared in the code it protects:

* ``self._attr = ...  # guarded-by: _lock`` — every read or write of
  ``self._attr`` outside ``with self._lock:`` (or a method annotated
  ``# requires-lock: _lock``) is a data race (**CON001**).
* A module-level ``GUARDED_BY = {"Class.attr": "_lock"}`` table
  declares the same thing for code that cannot carry trailing
  comments.
* ``self._lock = make_lock("<node>")  # guards: ...`` documents a
  lock allocation; :func:`lock_registry` exposes every allocation so
  ``tools/check_invariants.py`` can insist the ``make_lock`` name
  literal equals the site's derived node name (which is what lets the
  runtime sanitizer in :mod:`repro.obs.lockcheck` join its observed
  acquisition graph with the static one on equal strings).
* ``# con-ok: CON00x <reason>`` on the offending line waives one rule
  at one site, in the code where reviewers see it — deliberate
  patterns (the logger's write-under-lock) are waived, never
  baselined away.

Rules (catalogued in :data:`repro.analysis.rules.RULES`):

* **CON001** (error) — guarded attribute accessed without its lock.
* **CON002** (warning) — guarded *mutable* state (dict/list/set/deque)
  returned or yielded by reference; the caller would mutate or
  iterate it unsynchronised.  Return a copy.
* **CON003** (warning) — blocking call (file I/O, ``time.sleep``,
  ``subprocess``/``socket`` use, stream writes) while holding a lock.
* **CON004** (error) — the cross-module lock-acquisition graph has a
  cycle: two threads taking the locks in opposite orders deadlock.

The lock-order graph (:func:`lock_order_graph`) is built from lexical
``with`` nesting plus interprocedural edges: per-class method
summaries (which locks does calling ``m()`` acquire, does it block)
are computed to a fixpoint over ``self.*`` calls, then calls through
typed attributes (``self.journal = JobJournal(...)`` in ``__init__``)
and the well-known accessor factories (``get_metrics()`` /
``get_trace()`` / ``get_logger()``) stitch the classes together.
``threading.Condition(self._lock)`` aliases are resolved to the
underlying lock.

Nodes are named ``<module>.<Class>.<attr>`` — exactly the string the
code passes to :func:`repro.obs.lockcheck.make_lock`, so the runtime
sanitizer's observed edges and these static edges live in one
namespace.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Location
from repro.analysis.rules import RULES

__all__ = [
    "CON_RULES",
    "LockSite",
    "SourceAnalysis",
    "analyse_source",
    "default_source_paths",
    "lock_order_graph",
    "lock_registry",
    "source_analysis",
]

#: rule id -> severity, looked up from the shared catalogue
CON_RULES: Dict[str, str] = {
    rule.rule_id: rule.severity for rule in RULES if rule.kind == "source"
}

#: accessor factories returning a well-known singleton's class
KNOWN_FACTORIES: Dict[str, str] = {
    "get_metrics": "Metrics",
    "get_trace": "TraceBuffer",
    "get_logger": "JsonLogger",
}

#: callables that block: bare names and dotted ``module.name`` forms
_BLOCKING_CALLS = {
    "open",
    "sleep",
    "time.sleep",
    "os.fsync",
    "os.replace",
    "os.rename",
    "os.unlink",
    "os.remove",
    "os.makedirs",
    "os.listdir",
    "os.stat",
    "os.path.getsize",
}

#: any call into these modules blocks (process/network I/O)
_BLOCKING_MODULES = {"subprocess", "socket"}

#: method names that block on arbitrary receivers (stream/socket I/O,
#: thread joins); ``join`` on a string constant is excluded at the
#: call site, ``wait``/``notify*`` on a Condition alias likewise
_BLOCKING_METHODS = {
    "write",
    "flush",
    "read",
    "readline",
    "readlines",
    "recv",
    "send",
    "sendall",
    "join",
    "wait",
}

#: constructors of shared-mutable containers (CON002's notion of
#: "escaping this by reference is dangerous")
_MUTABLE_FACTORIES = {"dict", "list", "set", "deque", "defaultdict", "OrderedDict"}

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_GUARDS_RE = re.compile(r"#\s*guards:")
_REQUIRES_RE = re.compile(r"#\s*requires-lock:\s*([A-Za-z_]\w*)")
_WAIVER_RE = re.compile(r"#\s*con-ok:\s*(CON\d{3})")


# ---------------------------------------------------------------------------
# Per-module model


@dataclass(frozen=True)
class LockSite:
    """One lock allocation found in the analysed sources."""

    path: str  #: display path of the defining file
    line: int  #: allocation line
    module: str  #: dotted module name
    cls: str  #: owning class
    attr: str  #: attribute the lock is stored under
    node: str  #: derived node name ``<module>.<Class>.<attr>``
    declared: Optional[str]  #: the ``make_lock`` literal, ``None`` if bare
    documented: bool  #: guarded-by discipline or ``# guards:`` present


class _ClassModel:
    """Everything the walker needs to know about one class."""

    def __init__(self, module: "_ModuleModel", name: str) -> None:
        self.module = module
        self.name = name
        #: lock attr -> derived node name
        self.locks: Dict[str, str] = {}
        #: lock attr -> make_lock literal (None for a bare Lock())
        self.declared: Dict[str, Optional[str]] = {}
        #: lock attr -> allocation line
        self.lock_lines: Dict[str, int] = {}
        #: lock attr -> allocation stmt carries a ``# guards:`` comment
        self.lock_documented: Dict[str, bool] = {}
        #: Condition alias attr -> underlying lock attr
        self.aliases: Dict[str, str] = {}
        #: guarded attr -> lock attr
        self.guarded: Dict[str, str] = {}
        #: guarded attrs initialised to a mutable container
        self.mutable: Set[str] = set()
        #: attr -> class name (``self.journal = JobJournal(...)``)
        self.attr_types: Dict[str, str] = {}
        #: method name -> function node
        self.methods: Dict[str, ast.AST] = {}
        #: method name -> required lock attrs (``# requires-lock:``)
        self.requires: Dict[str, Set[str]] = {}

    def canonical(self, attr: str) -> str:
        """Resolve a Condition alias to its underlying lock attr."""
        return self.aliases.get(attr, attr)

    def node_for(self, attr: str) -> Optional[str]:
        return self.locks.get(self.canonical(attr))


class _ModuleModel:
    """One parsed source file plus its comment-borne annotations."""

    def __init__(self, path: str, display: str, name: str, text: str) -> None:
        self.path = path
        self.display = display
        self.name = name
        self.tree = ast.parse(text)
        self.classes: Dict[str, _ClassModel] = {}
        #: line -> comment text
        self.comments: Dict[int, str] = _comments_by_line(text)
        #: (line, rule id) waivers
        self.waivers: Set[Tuple[int, str]] = {
            (line, match.group(1))
            for line, comment in self.comments.items()
            for match in [_WAIVER_RE.search(comment)]
            if match is not None
        }
        #: ``GUARDED_BY`` table entries: (class, attr) -> lock attr
        self.table: Dict[Tuple[str, str], str] = {}

    def span_comment(
        self, stmt: ast.AST, pattern: "re.Pattern[str]"
    ) -> Optional["re.Match[str]"]:
        """First matching trailing comment within a statement's lines."""
        start = getattr(stmt, "lineno", None)
        if start is None:
            return None
        end = getattr(stmt, "end_lineno", start) or start
        for line in range(start, end + 1):
            comment = self.comments.get(line)
            if comment is not None:
                match = pattern.search(comment)
                if match is not None:
                    return match
        return None

    def waived(self, line: int, rule_id: str) -> bool:
        return (line, rule_id) in self.waivers


def _comments_by_line(text: str) -> Dict[int, str]:
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # a file ast can parse but tokenize trips on is exotic enough
        # that losing its annotations beats crashing the lint run
        pass
    return comments


# ---------------------------------------------------------------------------
# Harvesting the per-class model


def _dotted(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` rendered as a string, ``None`` for anything richer."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base is not None else None
    return None


def _is_self_attr(expr: ast.AST) -> Optional[str]:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _lock_allocation(value: ast.AST) -> Optional[Tuple[Optional[str], bool]]:
    """Is ``value`` a lock allocation?

    Returns ``(make_lock literal or None, is_lock)`` — ``(name, True)``
    for ``make_lock("name")``, ``(None, True)`` for a bare
    ``threading.Lock()`` / ``threading.RLock()`` (or the same wrapped
    in a dataclass ``field(default_factory=...)``), ``None`` when the
    value is not a lock allocation at all.
    """
    if isinstance(value, ast.Call):
        callee = _dotted(value.func)
        if callee in ("make_lock", "lockcheck.make_lock"):
            if value.args and isinstance(value.args[0], ast.Constant) and isinstance(
                value.args[0].value, str
            ):
                return (value.args[0].value, True)
            return (None, True)
        if callee in ("threading.Lock", "threading.RLock", "Lock", "RLock"):
            return (None, True)
        if callee is not None and callee.split(".")[-1] == "field":
            for keyword in value.keywords:
                if keyword.arg != "default_factory":
                    continue
                factory = keyword.value
                if isinstance(factory, ast.Lambda):
                    return _lock_allocation(factory.body)
                name = _dotted(factory)
                if name in ("threading.Lock", "threading.RLock", "Lock", "RLock"):
                    return (None, True)
    return None


def _mutable_value(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        callee = _dotted(value.func)
        if callee is None:
            return False
        leaf = callee.split(".")[-1]
        if leaf in _MUTABLE_FACTORIES:
            return True
        if leaf == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    name = _dotted(keyword.value)
                    if name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES:
                        return True
    return False


def _harvest_module(model: _ModuleModel) -> None:
    for stmt in model.tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "GUARDED_BY" for t in stmt.targets
        ):
            if isinstance(stmt.value, ast.Dict):
                for key, val in zip(stmt.value.keys, stmt.value.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(val, ast.Constant)
                        and isinstance(val.value, str)
                        and "." in key.value
                    ):
                        cls_name, _, attr = key.value.rpartition(".")
                        model.table[(cls_name, attr)] = val.value
        elif isinstance(stmt, ast.ClassDef):
            _harvest_class(model, stmt)
    # apply the module-level table after every class is known
    for (cls_name, attr), lock in model.table.items():
        cls = model.classes.get(cls_name)
        if cls is not None:
            cls.guarded.setdefault(attr, lock)


def _harvest_class(model: _ModuleModel, node: ast.ClassDef) -> None:
    cls = _ClassModel(model, node.name)
    model.classes[node.name] = cls
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = stmt
            match = model.span_comment(
                _def_header(stmt), _REQUIRES_RE
            )
            if match is not None:
                cls.requires.setdefault(stmt.name, set()).add(match.group(1))
            if stmt.name in ("__init__", "__post_init__"):
                _harvest_init(model, cls, stmt)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            # dataclass-style field declaration in the class body
            _harvest_attr_stmt(
                model, cls, stmt, stmt.target.id, stmt.value
            )
    # resolve Condition aliases declared before their lock (rare)
    for alias, lock_attr in list(cls.aliases.items()):
        if lock_attr not in cls.locks:
            del cls.aliases[alias]


class _HeaderProxy:
    """A minimal lineno span covering only a ``def``'s header line."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
        self.end_lineno = lineno


def _def_header(stmt: ast.AST) -> ast.AST:
    # the requires-lock comment sits on the ``def`` line itself, not
    # somewhere inside the (possibly long) body span
    return _HeaderProxy(getattr(stmt, "lineno", 1))  # type: ignore[return-value]


def _harvest_init(
    model: _ModuleModel, cls: _ClassModel, func: ast.AST
) -> None:
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign):
            targets = [
                attr
                for target in stmt.targets
                for attr in [_is_self_attr(target)]
                if attr is not None
            ]
            for attr in targets:
                _harvest_attr_stmt(model, cls, stmt, attr, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            attr = _is_self_attr(stmt.target)
            if attr is not None:
                _harvest_attr_stmt(model, cls, stmt, attr, stmt.value)


def _harvest_attr_stmt(
    model: _ModuleModel,
    cls: _ClassModel,
    stmt: ast.AST,
    attr: str,
    value: Optional[ast.AST],
) -> None:
    line = getattr(stmt, "lineno", 1)
    if value is not None:
        allocation = _lock_allocation(value)
        if allocation is not None:
            declared, _ = allocation
            if attr not in cls.locks:
                cls.locks[attr] = f"{model.name}.{cls.name}.{attr}"
                cls.declared[attr] = declared
                cls.lock_lines[attr] = line
                cls.lock_documented[attr] = (
                    model.span_comment(stmt, _GUARDS_RE) is not None
                )
            return
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee in ("threading.Condition", "Condition") and value.args:
                aliased = _is_self_attr(value.args[0])
                if aliased is not None:
                    cls.aliases[attr] = aliased
                    return
            if isinstance(value.func, ast.Name):
                cls.attr_types.setdefault(attr, value.func.id)
    match = model.span_comment(stmt, _GUARDED_RE)
    if match is not None:
        cls.guarded.setdefault(attr, match.group(1))
        if value is not None and _mutable_value(value):
            cls.mutable.add(attr)


# ---------------------------------------------------------------------------
# Method summaries (which locks does calling this acquire / can it block)


@dataclass
class _Summary:
    acquires: Set[str] = field(default_factory=set)  #: node names
    may_block: bool = False
    callees: Set[str] = field(default_factory=set)  #: same-class names


def _blocking_call(call: ast.Call, cls: Optional[_ClassModel]) -> Optional[str]:
    """A short description when ``call`` is considered blocking."""
    callee = _dotted(call.func)
    if callee is not None:
        if callee in _BLOCKING_CALLS:
            return f"{callee}()"
        if callee.split(".")[0] in _BLOCKING_MODULES:
            return f"{callee}()"
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method in _BLOCKING_METHODS:
            receiver = call.func.value
            if isinstance(receiver, (ast.Constant, ast.JoinedStr)):
                return None  # "sep".join(...) is not I/O
            attr = _is_self_attr(receiver)
            if (
                cls is not None
                and attr is not None
                and (attr in cls.aliases or attr in cls.locks)
            ):
                return None  # Condition.wait/notify on our own lock
            return f".{method}()"
    return None


def _summarise_method(cls: _ClassModel, func: ast.AST) -> _Summary:
    summary = _Summary()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _is_self_attr(item.context_expr)
                if attr is not None:
                    lock_node = cls.node_for(attr)
                    if lock_node is not None:
                        summary.acquires.add(lock_node)
        elif isinstance(node, ast.Call):
            if _blocking_call(node, cls) is not None:
                summary.may_block = True
            attr = (
                _is_self_attr(node.func)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if attr is not None and attr in cls.methods:
                summary.callees.add(attr)
        elif isinstance(node, ast.Attribute):
            # property access runs the property body
            attr = _is_self_attr(node)
            if attr is not None and attr in cls.methods:
                summary.callees.add(attr)
    return summary


def _fixpoint_summaries(
    classes: Dict[str, _ClassModel]
) -> Dict[Tuple[str, str], _Summary]:
    summaries: Dict[Tuple[str, str], _Summary] = {}
    for cls in classes.values():
        for name, func in cls.methods.items():
            summaries[(cls.name, name)] = _summarise_method(cls, func)
    changed = True
    while changed:
        changed = False
        for cls in classes.values():
            for name in cls.methods:
                summary = summaries[(cls.name, name)]
                for callee in summary.callees:
                    other = summaries.get((cls.name, callee))
                    if other is None:
                        continue
                    if not other.acquires <= summary.acquires:
                        summary.acquires |= other.acquires
                        changed = True
                    if other.may_block and not summary.may_block:
                        summary.may_block = True
                        changed = True
    return summaries


# ---------------------------------------------------------------------------
# The per-method walker


class _MethodWalker:
    """Walks one method body tracking the set of held locks."""

    def __init__(
        self,
        cls: _ClassModel,
        method_name: str,
        classes: Dict[str, _ClassModel],
        summaries: Dict[Tuple[str, str], _Summary],
        report: AnalysisReport,
        edges: Dict[str, Set[str]],
    ) -> None:
        self.cls = cls
        self.model = cls.module
        self.method = method_name
        self.classes = classes
        self.summaries = summaries
        self.report = report
        self.edges = edges
        self.constructor = method_name in ("__init__", "__post_init__", "__new__")
        #: local variable -> class name, built as assignments are seen
        self.local_types: Dict[str, str] = {}

    # -- diagnostics ---------------------------------------------------
    def _emit(
        self, rule_id: str, line: int, message: str, element: str, hint: str
    ) -> None:
        if self.model.waived(line, rule_id):
            return
        self.report.add(
            Diagnostic(
                rule_id,
                CON_RULES[rule_id],
                message,
                Location(
                    source=self.model.display,
                    field=f"{self.cls.name}.{self.method}",
                    element=element,
                ),
                hint=hint,
            )
        )

    def _edge(self, held: Sequence[str], acquired: Iterable[str]) -> None:
        for target in acquired:
            for source in held:
                if source != target:
                    self.edges.setdefault(source, set()).add(target)

    # -- statements ----------------------------------------------------
    def walk(self, func: ast.AST) -> None:
        held: List[str] = []
        held_attrs: Set[str] = set()
        for attr in self.cls.requires.get(self.method, ()):  # requires-lock
            canonical = self.cls.canonical(attr)
            held_attrs.add(canonical)
            node = self.cls.locks.get(canonical)
            if node is not None:
                held.append(node)
        self._walk_body(getattr(func, "body", []), held, held_attrs)

    def _walk_body(
        self, body: Sequence[ast.AST], held: List[str], held_attrs: Set[str]
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held, held_attrs)

    def _walk_stmt(
        self, stmt: ast.AST, held: List[str], held_attrs: Set[str]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope: runs later, under unknown locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = list(held)
            new_attrs = set(held_attrs)
            for item in stmt.items:
                attr = _is_self_attr(item.context_expr)
                lock_node = (
                    self.cls.node_for(attr) if attr is not None else None
                )
                if attr is not None and lock_node is not None:
                    self._edge(new_held, (lock_node,))
                    if lock_node in new_held:
                        # re-acquiring a non-reentrant lock deadlocks
                        # against ourselves: a one-node cycle
                        self.edges.setdefault(lock_node, set()).add(lock_node)
                    new_held.append(lock_node)
                    new_attrs.add(self.cls.canonical(attr))
                else:
                    self._scan_expr(item.context_expr, held, held_attrs)
                    if item.optional_vars is not None:
                        self._scan_expr(item.optional_vars, held, held_attrs)
            self._walk_body(stmt.body, new_held, new_attrs)
            return
        if isinstance(stmt, ast.Assign):
            self._track_local(stmt)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._check_escape(stmt.value, stmt.lineno)
        for value in ast.iter_fields(stmt):
            _, item = value
            if isinstance(item, ast.expr):
                self._scan_expr(item, held, held_attrs)
            elif isinstance(item, list):
                for child in item:
                    if isinstance(child, ast.stmt):
                        self._walk_stmt(child, held, held_attrs)
                    elif isinstance(child, ast.expr):
                        self._scan_expr(child, held, held_attrs)
                    elif isinstance(child, ast.excepthandler):
                        if child.type is not None:
                            self._scan_expr(child.type, held, held_attrs)
                        self._walk_body(child.body, held, held_attrs)
                    elif hasattr(child, "body") and isinstance(
                        getattr(child, "body"), list
                    ):
                        # match_case and friends
                        guard = getattr(child, "guard", None)
                        if isinstance(guard, ast.expr):
                            self._scan_expr(guard, held, held_attrs)
                        self._walk_body(child.body, held, held_attrs)

    def _track_local(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        value = stmt.value
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name):
                callee = value.func.id
                if callee in KNOWN_FACTORIES:
                    self.local_types[name] = KNOWN_FACTORIES[callee]
                    return
                if callee in self.classes:
                    self.local_types[name] = callee
                    return
        attr = _is_self_attr(value)
        if attr is not None and attr in self.cls.attr_types:
            self.local_types[name] = self.cls.attr_types[attr]

    # -- expressions ---------------------------------------------------
    def _iter_expr(self, expr: ast.expr) -> Iterable[ast.AST]:
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # deferred execution
            yield node
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, ast.stmt):
                    stack.append(child)

    def _scan_expr(
        self, expr: ast.expr, held: List[str], held_attrs: Set[str]
    ) -> None:
        for node in self._iter_expr(expr):
            if isinstance(node, ast.Attribute):
                self._check_guarded(node, held_attrs)
            elif isinstance(node, ast.Call):
                self._check_call(node, held, held_attrs)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    self._check_escape(node.value, node.lineno)

    def _check_guarded(self, node: ast.Attribute, held_attrs: Set[str]) -> None:
        if self.constructor:
            return  # the object is not shared during construction
        attr = _is_self_attr(node)
        if attr is None:
            return
        guard = self.cls.guarded.get(attr)
        if guard is None:
            return
        canonical = self.cls.canonical(guard)
        if canonical in held_attrs:
            return
        verb = "written" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        self._emit(
            "CON001",
            node.lineno,
            f"self.{attr} is guarded by self.{guard} but is {verb} at "
            f"line {node.lineno} without holding it",
            attr,
            f"wrap the access in `with self.{guard}:` or annotate the "
            f"method `# requires-lock: {guard}`",
        )

    def _check_escape(self, value: ast.expr, line: int) -> None:
        attr = _is_self_attr(value)
        if attr is None:
            return
        if attr in self.cls.guarded and attr in self.cls.mutable:
            self._emit(
                "CON002",
                line,
                f"guarded mutable self.{attr} escapes by reference from "
                f"{self.cls.name}.{self.method} at line {line}; the "
                f"caller would read it unsynchronised",
                attr,
                "return a copy (dict(...) / list(...)) taken under the lock",
            )

    def _check_call(
        self, node: ast.Call, held: List[str], held_attrs: Set[str]
    ) -> None:
        if held:
            description = _blocking_call(node, self.cls)
            if description is not None:
                self._emit(
                    "CON003",
                    node.lineno,
                    f"blocking call {description} at line {node.lineno} "
                    f"while holding {', '.join(sorted(set(held)))}",
                    f"L{node.lineno}",
                    "move the blocking work outside the critical section "
                    "(snapshot under the lock, emit outside), or waive a "
                    "deliberate pattern with `# con-ok: CON003 <reason>`",
                )
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        receiver = node.func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
            and method in self.cls.methods
        ):
            # same-class call: charge the callee's fixpoint summary
            summary = self.summaries.get((self.cls.name, method))
            if summary is not None and held:
                self._edge(held, summary.acquires)
                for lock_node in summary.acquires:
                    if lock_node in held:
                        # calling back into a non-reentrant lock we
                        # already hold: self-deadlock, a one-node cycle
                        self.edges.setdefault(lock_node, set()).add(
                            lock_node
                        )
                if summary.may_block:
                    self._emit(
                        "CON003",
                        node.lineno,
                        f"call to self.{method}() at line {node.lineno} "
                        f"may block (file or stream I/O inside) while "
                        f"holding {', '.join(sorted(set(held)))}",
                        f"L{node.lineno}",
                        "move the call outside the critical section, or "
                        "waive a deliberate pattern with "
                        "`# con-ok: CON003 <reason>`",
                    )
            return
        if held:
            target_cls = self._receiver_class(receiver)
            if target_cls is not None:
                summary = self.summaries.get((target_cls, method))
                if summary is not None:
                    self._edge(held, summary.acquires)

    def _receiver_class(self, receiver: ast.expr) -> Optional[str]:
        if isinstance(receiver, ast.Name):
            return self.local_types.get(receiver.id)
        attr = _is_self_attr(receiver)
        if attr is not None:
            cls_name = self.cls.attr_types.get(attr)
            if cls_name in self.classes:
                return cls_name
            return None
        if isinstance(receiver, ast.Call) and isinstance(receiver.func, ast.Name):
            return KNOWN_FACTORIES.get(receiver.func.id)
        return None


# ---------------------------------------------------------------------------
# Cycle detection


def _cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly-connected components with >1 node, plus self-loops."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    result: List[List[str]] = []

    nodes = sorted(set(edges) | {t for ts in edges.values() for t in ts})

    def strongconnect(root: str) -> None:
        # iterative Tarjan: (node, iterator state) frames
        work: List[Tuple[str, List[str], int]] = [
            (root, sorted(edges.get(root, ())), 0)
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, position = work.pop()
            advanced = False
            while position < len(successors):
                successor = successors[position]
                position += 1
                if successor not in index:
                    work.append((node, successors, position))
                    index[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, sorted(edges.get(successor, ())), 0)
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges.get(node, ()):
                    result.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return sorted(result)


# ---------------------------------------------------------------------------
# Public API


@dataclass
class SourceAnalysis:
    """Everything one pass over the sources produces."""

    report: AnalysisReport
    lock_graph: Dict[str, Set[str]]  #: static acquired-while-held edges
    locks: List[LockSite]  #: every lock allocation found


def default_source_paths(root: Optional[str] = None) -> List[str]:
    """Every ``.py`` file of the installed ``repro`` package."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__"
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    return paths


def _display_path(path: str) -> str:
    absolute = os.path.abspath(path)
    relative = os.path.relpath(absolute, os.getcwd())
    return absolute if relative.startswith("..") else relative


def _module_name(path: str) -> str:
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    stem = parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def source_analysis(
    paths: Optional[Sequence[str]] = None,
) -> SourceAnalysis:
    """Run every concurrency pass over ``paths`` (default: the package).

    Raises :class:`ValueError` for a file that cannot be parsed and
    :class:`OSError` for one that cannot be read — the CLI maps both
    onto exit code 2.
    """
    if paths is None:
        paths = default_source_paths()
    models: List[_ModuleModel] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            models.append(
                _ModuleModel(path, _display_path(path), _module_name(path), text)
            )
        except SyntaxError as error:
            raise ValueError(
                f"cannot parse {path}: {error}"
            ) from error
    for model in models:
        _harvest_module(model)

    # one flat class namespace across the corpus; a duplicated class
    # name keeps its first definition (cross-class resolution is
    # best-effort by design)
    classes: Dict[str, _ClassModel] = {}
    for model in models:
        for name, cls in model.classes.items():
            classes.setdefault(name, cls)
    summaries = _fixpoint_summaries(classes)

    report = AnalysisReport()
    edges: Dict[str, Set[str]] = {}
    for model in models:
        for cls in model.classes.values():
            if classes.get(cls.name) is not cls:
                continue  # shadowed duplicate
            for method_name, func in cls.methods.items():
                walker = _MethodWalker(
                    cls, method_name, classes, summaries, report, edges
                )
                walker.walk(func)

    for component in _cycles(edges):
        rendered = " -> ".join(component + [component[0]])
        anchor = sorted(
            model.display
            for model in models
            for cls in model.classes.values()
            if any(node in component for node in cls.locks.values())
        )
        report.add(
            Diagnostic(
                "CON004",
                CON_RULES["CON004"],
                f"lock-order cycle: {rendered}; two threads taking these "
                f"locks in opposite orders deadlock",
                Location(
                    source=anchor[0] if anchor else None,
                    field="lock-order",
                    element=rendered,
                ),
                hint=(
                    "pick one global order for these locks and release "
                    "before acquiring against it"
                ),
            )
        )

    locks: List[LockSite] = []
    for model in models:
        for cls in model.classes.values():
            for attr, node in sorted(cls.locks.items()):
                documented = cls.lock_documented.get(attr, False) or any(
                    cls.canonical(guard) == attr
                    for guard in cls.guarded.values()
                )
                locks.append(
                    LockSite(
                        path=model.display,
                        line=cls.lock_lines.get(attr, 1),
                        module=model.name,
                        cls=cls.name,
                        attr=attr,
                        node=node,
                        declared=cls.declared.get(attr),
                        documented=documented,
                    )
                )
    return SourceAnalysis(report=report, lock_graph=edges, locks=locks)


def analyse_source(paths: Optional[Sequence[str]] = None) -> AnalysisReport:
    """The concurrency findings alone (what ``lint --source`` prints)."""
    return source_analysis(paths).report


def lock_order_graph(
    paths: Optional[Sequence[str]] = None,
) -> Dict[str, Set[str]]:
    """The static acquired-while-held graph, node -> successor set.

    Node names equal the :func:`repro.obs.lockcheck.make_lock` name
    literals, so :meth:`repro.obs.lockcheck.LockMonitor.inversions`
    can take this graph directly.
    """
    return source_analysis(paths).lock_graph


def lock_registry(paths: Optional[Sequence[str]] = None) -> List[LockSite]:
    """Every lock allocation in ``paths``, for the invariant checker."""
    return source_analysis(paths).locks
