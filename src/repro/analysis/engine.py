"""Run the rule catalogue over models and gate the allocation flow.

``analyse_*`` functions run every registered rule of the matching kind
and return an :class:`~repro.analysis.diagnostics.AnalysisReport`.
:func:`preflight_check` is the flow-facing entry point: it runs the
error-severity application rules (plus the underlying SDF structure
rules) against the *current* architecture state and reports through the
``lint.*`` obs counters and the ``lint`` trace category, so a rejected
application is visible in metrics snapshots and Chrome traces.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.rules import rules_for
from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph
from repro.csdf.graph import CSDFGraph
from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.sdf.graph import SDFGraph


def analyse_graph(graph: SDFGraph) -> AnalysisReport:
    """All ``SDF0xx`` findings for one SDF graph."""
    report = AnalysisReport()
    for rule in rules_for("sdf"):
        report.extend(rule.check(graph))
    return report


def analyse_csdf(graph: CSDFGraph) -> AnalysisReport:
    """All ``CSD0xx`` findings for one CSDF graph."""
    report = AnalysisReport()
    for rule in rules_for("csdf"):
        report.extend(rule.check(graph))
    return report


def analyse_architecture(architecture: ArchitectureGraph) -> AnalysisReport:
    """All ``ARC0xx`` findings for one architecture graph."""
    report = AnalysisReport()
    for rule in rules_for("arch"):
        report.extend(rule.check(architecture))
    return report


def analyse_application(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> AnalysisReport:
    """``SDF0xx`` + ``APP0xx`` findings for one application.

    Platform-dependent rules (``APP003``/``APP004``) only run when an
    architecture is supplied.
    """
    report = analyse_graph(application.graph)
    for rule in rules_for("app"):
        report.extend(rule.check(application, architecture))
    return report


def analyse_bundle(
    bundle: Dict[str, Any], source: Optional[str] = None
) -> AnalysisReport:
    """All ``ALLOC0xx`` findings for one allocation bundle (plain dict)."""
    report = AnalysisReport()
    for rule in rules_for("bundle"):
        report.extend(rule.check(bundle, source))
    return report


def preflight_check(
    application: ApplicationGraph,
    architecture: Optional[ArchitectureGraph] = None,
) -> AnalysisReport:
    """The flow's static gate: error findings only.

    Runs the application analysis and keeps error-severity findings —
    each one proves no allocation can exist, so the flow can reject the
    application without exploring a single state.  Emits ``lint.*``
    counters and a ``lint`` trace event either way.
    """
    obs = get_metrics()
    tr = get_trace()
    report = analyse_application(application, architecture)
    errors = AnalysisReport(report.errors)
    if obs.enabled:
        obs.counter("lint.preflight_runs")
        if errors:
            obs.counter("lint.preflight_rejects")
            obs.counter("lint.findings", len(errors))
    if tr.enabled:
        if errors:
            tr.instant(
                "lint",
                "preflight.reject",
                application=application.name,
                findings=len(errors),
                rules=sorted({d.rule_id for d in errors}),
            )
        else:
            tr.instant("lint", "preflight.pass", application=application.name)
    return errors
