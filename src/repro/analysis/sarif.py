"""SARIF 2.1.0 output for lint reports.

Emits the minimal conforming subset of the Static Analysis Results
Interchange Format: one run, a ``tool.driver`` carrying the full rule
catalogue as ``reportingDescriptor`` objects, and one ``result`` per
finding with rule ID, level, message and location.  Severities map to
SARIF levels as ``error -> error``, ``warning -> warning``,
``info -> note``.  Fingerprints ride in ``partialFingerprints`` under
the ``reproLint/v1`` key so SARIF viewers can match findings across
runs the same way ``--baseline`` does.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}


def _rule_descriptor(rule_id: str, severity: str, title: str) -> Dict[str, Any]:
    return {
        "id": rule_id,
        "shortDescription": {"text": title},
        "defaultConfiguration": {"level": _LEVELS[severity]},
    }


def _result(diagnostic: Diagnostic) -> Dict[str, Any]:
    location: Dict[str, Any] = {}
    if diagnostic.location.source is not None:
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": diagnostic.location.source}
        }
        location["physicalLocation"] = physical
    logical_name = diagnostic.location.element or diagnostic.location.field
    if logical_name is not None:
        logical: Dict[str, Any] = {"name": logical_name}
        if diagnostic.location.field is not None:
            logical["fullyQualifiedName"] = diagnostic.location.field
        location["logicalLocations"] = [logical]
    result: Dict[str, Any] = {
        "ruleId": diagnostic.rule_id,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "partialFingerprints": {"reproLint/v1": diagnostic.fingerprint},
    }
    if location:
        result["locations"] = [location]
    return result


def to_sarif(report: AnalysisReport) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for ``report`` (JSON-serialisable)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-alloc lint",
                        "informationUri": (
                            "https://example.invalid/repro-alloc/docs/ANALYSIS.md"
                        ),
                        "rules": [
                            _rule_descriptor(
                                rule.rule_id, rule.severity, rule.title
                            )
                            for rule in RULES
                        ],
                    }
                },
                "results": [_result(d) for d in report],
            }
        ],
    }
