"""Maximise-throughput allocation (the objective of the paper's ref [6]).

Bilsen et al. map a single application so as to *maximise* the
throughput realisable with the available resources, whereas this
paper's strategy *minimises* resources under a given constraint (so
more applications fit).  For head-to-head comparisons we provide the
[6]-style objective on top of our own machinery: bind and schedule as
usual, grant the entire remaining time wheels, and report the best
guaranteed throughput — plus, optionally, the largest constraint the
standard strategy could have satisfied (they coincide, which the test
suite checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding, SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.arch.architecture import ArchitectureGraph
from repro.core.binding import bind_application
from repro.core.scheduling import build_static_order_schedules
from repro.core.tile_cost import CostWeights
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import DEFAULT_MAX_STATES


@dataclass
class MaxThroughputResult:
    """The best guaranteed rate for one application on the platform."""

    binding: Binding
    scheduling: SchedulingFunction
    max_throughput: Fraction

    @property
    def tiles_used(self) -> int:
        return len(self.binding.used_tiles())


def maximize_throughput(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    weights: Optional[CostWeights] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> MaxThroughputResult:
    """The largest guaranteed throughput on the remaining resources.

    Uses the paper's binding and scheduling steps, then allocates the
    *entire* remaining wheel of every used tile (the most any slice
    allocation could grant) and evaluates the constrained throughput.
    Monotonicity of throughput in the slice sizes makes this the
    maximum over all slice allocations for that binding and schedule.
    """
    binding = bind_application(
        application, architecture, weights or CostWeights.default()
    )
    slices: Dict[str, int] = {}
    for tile_name in binding.used_tiles():
        remaining = architecture.tile(tile_name).wheel_remaining
        if remaining < 1:
            slices[tile_name] = 0
        else:
            slices[tile_name] = remaining
    bag = build_binding_aware_graph(
        application, architecture, binding, slices=slices
    )
    schedules = build_static_order_schedules(bag, max_states=max_states)
    scheduling = SchedulingFunction()
    for tile_name, schedule in schedules.items():
        scheduling.set_schedule(tile_name, schedule)
        scheduling.set_slice(tile_name, slices[tile_name])
    result = constrained_throughput(
        bag.graph, bag.tile_constraints(scheduling), max_states=max_states
    )
    return MaxThroughputResult(
        binding=binding,
        scheduling=scheduling,
        max_throughput=result.of(application.output_actor),
    )
