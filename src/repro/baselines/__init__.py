"""Baselines the paper compares against.

* :mod:`repro.baselines.hsdf_path` — throughput via the classical
  SDF -> HSDF -> maximum-cycle-ratio route (what any HSDF-based
  allocation flow pays per throughput check; §1's 21-minutes-vs-3
  comparison).
* :mod:`repro.baselines.tdma_inflation` — the conservative TDMA model
  of the paper's ref [4], which inflates every actor's execution time by
  the unreserved part of the wheel instead of tracking wheel positions;
  §8.2 argues the state-space technique is strictly more accurate.
"""

from repro.baselines.hsdf_path import hsdf_throughput_check, timed_throughput_comparison
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.baselines.max_throughput import MaxThroughputResult, maximize_throughput

__all__ = [
    "hsdf_throughput_check",
    "timed_throughput_comparison",
    "tdma_inflated_throughput",
    "MaxThroughputResult",
    "maximize_throughput",
]
