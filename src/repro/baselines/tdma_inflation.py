"""The conservative TDMA model of the paper's reference [4].

Instead of tracking TDMA wheel positions during execution, [4] inflates
the execution time of *every* firing of an actor bound to tile ``t`` by
``w_t - omega_t`` (the worst-case wait for the application's slice).
Section 8.2 shows this is the upper bound of the delay the state-space
technique charges — the constrained analysis often postpones firings by
less, so it proves a higher guaranteed throughput from the same slices
and therefore needs fewer resources.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.appmodel.binding_aware import BindingAwareGraph
from repro.resilience.budget import Budget
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    ThroughputResult,
    throughput,
)


def tdma_inflated_throughput(
    bag: BindingAwareGraph,
    slices: Dict[str, int],
    max_states: int = DEFAULT_MAX_STATES,
    budget: Optional[Budget] = None,
) -> ThroughputResult:
    """Throughput of a binding-aware graph under the [4] TDMA model.

    Every actor bound to a tile executes for
    ``tau + (w_t - omega_t)``; connection and alignment actors keep
    their times (the alignment actors are updated for ``slices`` first,
    as in the constrained analysis).  The result is directly comparable
    to :func:`repro.throughput.constrained.constrained_throughput` for
    the same slices and is never more optimistic.
    """
    bag.update_slices(slices)
    inflated: Dict[str, int] = {}
    for actor in bag.graph.actors:
        inflated[actor.name] = actor.execution_time
    for actor_name, tile_name in bag.binding.assignment.items():
        tile = bag.architecture.tile(tile_name)
        inflated[actor_name] += tile.wheel - slices[tile_name]
    return throughput(
        bag.graph,
        execution_times=inflated,
        max_states=max_states,
        budget=budget,
    )
