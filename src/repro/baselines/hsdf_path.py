"""The HSDF-conversion throughput path and its run-time comparison.

Any pre-existing allocation flow for throughput-constrained graphs must
(1) convert the SDFG to its HSDFG — exponentially larger in the worst
case — and (2) run a maximum-cycle-mean/ratio analysis on it, once per
throughput check.  The paper's headline run-time claim (Section 1) is
that working directly on the SDFG makes each check cheap; the helpers
here measure both paths on the same graph so benchmarks can reproduce
the comparison's *shape* (who is faster, and by how much it grows with
the multirate factor).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.sdf.graph import SDFGraph
from repro.sdf.transform import sdf_to_hsdf
from repro.throughput.mcr import hsdf_iteration_rate
from repro.throughput.state_space import throughput

Rate = Union[Fraction, float]


def hsdf_throughput_check(graph: SDFGraph, method: str = "howard") -> Rate:
    """One baseline throughput check: convert to HSDF, invert the MCR.

    ``method`` selects the MCR algorithm; the default is Howard policy
    iteration, the fastest exact option at H.263 scale (i.e. the
    baseline is as strong as we can make it).
    """
    hsdf = sdf_to_hsdf(graph)
    return hsdf_iteration_rate(hsdf, method=method)


@dataclass
class ThroughputComparison:
    """Wall-clock and result of both throughput paths on one graph."""

    graph_name: str
    sdf_actors: int
    hsdf_actors: int
    direct_rate: Rate
    direct_seconds: float
    hsdf_rate: Rate
    hsdf_seconds: float

    @property
    def speedup(self) -> float:
        """How much faster the direct SDFG analysis is."""
        if self.direct_seconds == 0:
            return float("inf")
        return self.hsdf_seconds / self.direct_seconds


def timed_throughput_comparison(graph: SDFGraph) -> ThroughputComparison:
    """Run both throughput paths on ``graph`` and time them."""
    start = time.perf_counter()
    direct = throughput(graph)
    direct_seconds = time.perf_counter() - start

    start = time.perf_counter()
    hsdf = sdf_to_hsdf(graph)
    hsdf_rate = hsdf_iteration_rate(hsdf, method="howard")
    hsdf_seconds = time.perf_counter() - start

    return ThroughputComparison(
        graph_name=graph.name,
        sdf_actors=len(graph),
        hsdf_actors=len(hsdf),
        direct_rate=direct.iteration_rate,
        direct_seconds=direct_seconds,
        hsdf_rate=hsdf_rate,
        hsdf_seconds=hsdf_seconds,
    )
