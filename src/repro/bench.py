"""Curated benchmark harness behind ``repro-alloc bench``.

The harness runs a fixed set of workloads — the paper's running example
(fig. 5), the classic DSP models, the H.263 decoder, a seeded
random-SDFG allocation flow, a statically infeasible application
exercising the lint pre-flight gate, and the exact branch-and-bound
backend on fig. 5 — with instrumentation enabled, and emits
one ``BENCH_<label>.json`` file in the schema-versioned run-report
format of :mod:`repro.obs.report`.  Each workload records

* ``wall_seconds`` — machine-dependent, compared only against a ratio
  threshold (CI boxes are noisy);
* ``states_explored`` / ``throughput_checks`` — deterministic engine
  work counters, compared exactly: any increase is a regression;
* ``facts`` — deterministic result values (throughputs, applications
  bound), compared exactly: any difference is a correctness regression.

:func:`compare_reports` implements the thresholded regression check
used by ``bench --compare`` (exit code 5 on a hard regression) and the
CI bench job (see ``.github/workflows/ci.yml`` and ``make bench``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import Metrics, collecting
from repro.obs.report import build_report

#: wall-time slack factor: ``new > old * DEFAULT_MAX_TIME_RATIO`` warns
DEFAULT_MAX_TIME_RATIO = 2.0

__all__ = [
    "DEFAULT_MAX_TIME_RATIO",
    "ComparisonResult",
    "compare_reports",
    "run_bench",
    "workload_names",
]


def _bench_fig5(fast: bool, seed: int) -> Dict[str, Any]:
    from repro.appmodel.example import (
        paper_example_application,
        paper_example_architecture,
    )
    from repro.core.strategy import ResourceAllocator

    allocation = ResourceAllocator().allocate(
        paper_example_application(), paper_example_architecture()
    )
    return {
        "achieved_throughput": str(allocation.achieved_throughput),
        "throughput_checks": allocation.throughput_checks,
        "tiles_used": len(allocation.binding.used_tiles()),
    }


def _bench_classic(fast: bool, seed: int) -> Dict[str, Any]:
    from repro.generate.classic import (
        modem,
        samplerate_converter,
        satellite_receiver,
    )
    from repro.throughput.state_space import throughput

    facts: Dict[str, Any] = {}
    for application in (samplerate_converter(), modem(), satellite_receiver()):
        result = throughput(application.graph)
        facts[application.graph.name] = {
            "iteration_rate": str(result.iteration_rate),
            "states": result.states_explored,
        }
    return facts


def _bench_h263(fast: bool, seed: int) -> Dict[str, Any]:
    from repro.generate.multimedia import h263_decoder
    from repro.throughput.state_space import throughput

    result = throughput(h263_decoder().graph)
    return {
        "iteration_rate": str(result.iteration_rate),
        "states": result.states_explored,
    }


def _bench_random_flow(fast: bool, seed: int) -> Dict[str, Any]:
    from repro.arch.presets import benchmark_architectures
    from repro.core.flow import allocate_until_failure
    from repro.core.tile_cost import CostWeights
    from repro.generate.benchmark import generate_benchmark_set

    architecture = benchmark_architectures()[0]
    applications = generate_benchmark_set(
        "mixed",
        4 if fast else 12,
        architecture.processor_types(),
        seed=seed,
    )
    result = allocate_until_failure(
        architecture,
        applications,
        weights=CostWeights.default(),
        continue_after_failure=not fast,
    )
    return {
        "applications_bound": result.applications_bound,
        "throughput_checks": result.total_throughput_checks,
        "failed_application": result.failed_application,
    }


def _bench_infeasible(fast: bool, seed: int) -> Dict[str, Any]:
    """The pre-flight gate: a doomed application must cost zero states.

    Takes the paper's running example and doubles its throughput
    constraint past the static bound of :mod:`repro.analysis.bounds` —
    provably unallocatable.  The flow's lint gate rejects it before any
    exploration, so the workload's ``states_explored`` is exactly 0;
    before the gate existed the same input burned a full (futile)
    search.
    """
    from repro.analysis import static_throughput_bound
    from repro.appmodel.example import (
        paper_example_application,
        paper_example_architecture,
    )
    from repro.core.flow import allocate_until_failure
    from repro.core.tile_cost import CostWeights

    architecture = paper_example_architecture()
    application = paper_example_application()
    bound = static_throughput_bound(application, architecture)
    assert bound is not None
    application.throughput_constraint = bound * 2
    result = allocate_until_failure(
        architecture,
        [application],
        weights=CostWeights.default(),
    )
    outcomes = [s["outcome"] for s in result.application_stats]
    return {
        "applications_bound": result.applications_bound,
        "outcomes": outcomes,
    }


def _bench_exact_small(fast: bool, seed: int) -> Dict[str, Any]:
    """The exact backend on fig. 5: pins the branch-and-bound's work.

    Runs :func:`repro.exact.search.exact_search` on the paper's running
    example and records the nodes explored, nodes pruned, leaves and
    throughput checks — all deterministic — plus the optimal cost.  A
    change in any of them means the search order, the pruning bounds or
    the objective changed; the cost in particular is the ground truth
    the optimality-gap harness (``tests/test_differential_allocation.py``)
    measures the greedy heuristic against.
    """
    from repro.appmodel.example import (
        paper_example_application,
        paper_example_architecture,
    )
    from repro.exact.search import exact_search

    result = exact_search(
        paper_example_application(), paper_example_architecture()
    )
    assert result.allocation is not None
    return {
        "cost": str(result.cost),
        "achieved_throughput": str(result.allocation.achieved_throughput),
        "nodes_explored": result.nodes_explored,
        "nodes_pruned": result.nodes_pruned,
        "leaves_evaluated": result.leaves_evaluated,
        "tiles_used": len(result.allocation.binding.used_tiles()),
    }


#: name -> workload body; bodies return the deterministic ``facts`` dict
_WORKLOADS: Tuple[Tuple[str, Callable[[bool, int], Dict[str, Any]]], ...] = (
    ("fig5-example", _bench_fig5),
    ("classic-models", _bench_classic),
    ("h263-analysis", _bench_h263),
    ("random-flow", _bench_random_flow),
    ("infeasible", _bench_infeasible),
    ("exact-small", _bench_exact_small),
)


def workload_names() -> List[str]:
    """The curated workload labels, in run order."""
    return [name for name, _ in _WORKLOADS]


def _work_counters(snapshot: Dict[str, Any]) -> Dict[str, int]:
    """Deterministic engine-work totals from a metrics snapshot."""
    counters = snapshot.get("counters", {})
    return {
        "states_explored": int(
            counters.get("state_space.states", 0)
            + counters.get("constrained.states", 0)
        ),
        "throughput_checks": int(
            counters.get("slices.throughput_checks", 0)
            + counters.get("exact.throughput_checks", 0)
        ),
    }


def run_bench(
    label: str, fast: bool = True, seed: int = 0
) -> Dict[str, Any]:
    """Run the curated workloads; return a versioned run report.

    ``fast`` (the default, used by CI and ``make bench``) keeps the
    random flow small; ``fast=False`` is the fuller nightly variant.
    The report's ``workloads`` list holds one record per workload with
    ``wall_seconds``, the deterministic work counters, and the
    workload's result ``facts``.
    """
    workloads: List[Dict[str, Any]] = []
    for name, body in _WORKLOADS:
        with collecting(Metrics()) as metrics:
            started = perf_counter()
            facts = body(fast, seed)
            wall = perf_counter() - started
            snapshot = metrics.snapshot()
        record: Dict[str, Any] = {"name": name, "wall_seconds": wall}
        record.update(_work_counters(snapshot))
        record["facts"] = facts
        workloads.append(record)
    return build_report(
        label,
        result={"mode": "fast" if fast else "full"},
        seed=seed,
        workloads=workloads,
    )


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_reports`.

    ``regressions`` fail the comparison (``bench --compare`` exits 5);
    ``warnings`` are reported but non-fatal (wall-time drift under the
    default policy, workloads only present in the new report).
    """

    regressions: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_time_ratio: float = DEFAULT_MAX_TIME_RATIO,
    strict_time: bool = False,
) -> ComparisonResult:
    """Thresholded regression check between two bench reports.

    Deterministic measures are compared exactly: more states explored,
    more throughput checks, different result facts or a workload that
    vanished are all hard regressions.  Wall time is compared against
    ``max_time_ratio`` and yields a warning unless ``strict_time`` is
    set (machine noise makes hard wall-time gates flaky off-CI).
    """
    if max_time_ratio <= 0:
        raise ValueError("max_time_ratio must be positive")
    outcome = ComparisonResult()
    old_by_name = {w["name"]: w for w in old.get("workloads", [])}
    new_by_name = {w["name"]: w for w in new.get("workloads", [])}
    for name, before in old_by_name.items():
        after = new_by_name.get(name)
        if after is None:
            outcome.regressions.append(
                f"{name}: workload missing from the new report"
            )
            continue
        for key in ("states_explored", "throughput_checks"):
            if after.get(key, 0) > before.get(key, 0):
                outcome.regressions.append(
                    f"{name}: {key} grew {before.get(key, 0)} -> "
                    f"{after.get(key, 0)}"
                )
        if after.get("facts") != before.get("facts"):
            outcome.regressions.append(
                f"{name}: result facts changed "
                f"({before.get('facts')!r} -> {after.get('facts')!r})"
            )
        old_wall = before.get("wall_seconds") or 0.0
        new_wall = after.get("wall_seconds") or 0.0
        if old_wall > 0 and new_wall > old_wall * max_time_ratio:
            message = (
                f"{name}: wall time {old_wall:.3f}s -> {new_wall:.3f}s "
                f"(over the {max_time_ratio:g}x threshold)"
            )
            if strict_time:
                outcome.regressions.append(message)
            else:
                outcome.warnings.append(message)
    for name in new_by_name:
        if name not in old_by_name:
            outcome.warnings.append(
                f"{name}: new workload (no baseline to compare)"
            )
    return outcome
