"""The single machine-readable registry of process exit codes.

Every exit status the toolchain can produce is declared here, once:

* :data:`EXIT_CODES` — the ``repro-alloc`` CLI's exit statuses.  Every
  ``return <literal>`` in :mod:`repro.cli` must be a key of this table
  (``tools/check_invariants.py`` enforces it), and the "Exit codes"
  table in ``docs/ROBUSTNESS.md`` is checked cell-for-cell against it.
* :data:`SANDBOX_EXIT_CODES` — the dedicated statuses a sandboxed
  child process exits with (chosen clear of shell/python conventions);
  :mod:`repro.service.sandbox` and ``sandbox_child`` import them from
  here.
* :data:`HTTP_EXIT_MAP` — how the service's HTTP rejections map onto
  client exit codes (``repro-alloc submit`` turns a 429 into exit 7
  and a 400 into exit 2).

Keeping the numbers in one importable module means the CLI, the HTTP
front end, the sandbox and the documentation can never silently
disagree about what an exit status means.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "EXIT_BENCH_REGRESSION",
    "EXIT_BUDGET",
    "EXIT_CODES",
    "EXIT_CPU",
    "EXIT_LINT",
    "EXIT_OK",
    "EXIT_OOM",
    "EXIT_OVERLOAD",
    "EXIT_REFUTED",
    "EXIT_SPEC",
    "EXIT_USER_ERROR",
    "HTTP_EXIT_MAP",
    "SANDBOX_EXIT_CODES",
]

EXIT_OK = 0
EXIT_USER_ERROR = 2
EXIT_BUDGET = 3
EXIT_REFUTED = 4
EXIT_BENCH_REGRESSION = 5
EXIT_LINT = 6
EXIT_OVERLOAD = 7

#: ``repro-alloc`` exit statuses.  ``docs/ROBUSTNESS.md`` renders this
#: table verbatim; the invariant checker diffs the two.
EXIT_CODES: Dict[int, str] = {
    EXIT_OK: "success",
    EXIT_USER_ERROR: "user error: missing file, malformed input or request",
    EXIT_BUDGET: "budget exhausted or state-space explosion",
    EXIT_REFUTED: "`verify` refuted an allocation",
    EXIT_BENCH_REGRESSION: "`bench --compare` detected a regression",
    EXIT_LINT: "`lint` found error-severity findings",
    EXIT_OVERLOAD: "`submit` rejected: the service queue is full (HTTP 429)",
}

#: child exit codes of :mod:`repro.service.sandbox_child`
EXIT_OOM = 40
EXIT_CPU = 41
EXIT_SPEC = 42

#: sandbox child exit statuses, same contract as :data:`EXIT_CODES`
SANDBOX_EXIT_CODES: Dict[int, str] = {
    EXIT_OOM: "sandbox child hit its address-space limit (MemoryError)",
    EXIT_CPU: "sandbox child exhausted its CPU-seconds limit (SIGXCPU)",
    EXIT_SPEC: "sandbox child was given an unreadable request spec",
}

#: HTTP rejection status -> the exit code ``repro-alloc submit`` uses
HTTP_EXIT_MAP: Dict[int, int] = {
    400: EXIT_USER_ERROR,
    429: EXIT_OVERLOAD,
}
