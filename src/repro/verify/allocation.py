"""Independent certification of allocation bundles.

:func:`certify_allocation` takes the plain-dict bundle written by
``repro-alloc`` (``--save-allocation`` / :func:`bundle_to_dict`) and
re-derives every guarantee the allocator claims, from scratch:

* the application SDFG is consistent (a repetition vector exists, by
  this module's own rate propagation);
* the binding covers exactly the graph's actors and respects each
  tile's resource 6-tuple — memory, NI connections, in/out bandwidth
  and time slice are re-summed here, not read back from the library;
* cross-tile channels have bandwidth and an existing connection;
* the static-order schedules cover exactly the bound actors per tile
  with repetition-vector multiplicity;
* the per-tile slice claims fit the TDMA wheels *across the whole
  bundle*, replaying the commits in order against the recorded
  occupancy;
* the claimed throughput meets the constraint and is backed by the
  periodic-phase certificate, replayed by :mod:`repro.verify.replay`
  against a freshly rebuilt binding-aware graph.

Allocations produced by the degradation ladder's TDMA-inflation
baseline carry no schedules and no certificate; their throughput comes
from a worst-case model that never over-promises, so they receive the
verdict ``"sound_lower_bound"`` (structural checks only) instead of
``"certified"``.  Any failed check yields ``"refuted"`` plus reasons.

Trust model: the checks share the repository's *data model* (graph and
application parsing, binding-aware graph construction) with the
allocator, but none of its *analysis* code — resource summation,
repetition vectors, schedule accounting and the timing replay are all
implemented independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.verify.certificate import CertificateFormatError
from repro.verify.replay import (
    RefutationError,
    check_window_reachable,
    replay_constrained,
)

VERDICT_CERTIFIED = "certified"
VERDICT_SOUND_LOWER_BOUND = "sound_lower_bound"
VERDICT_REFUTED = "refuted"

#: reservation claim key -> architecture tile capacity/occupancy keys
_RESOURCE_KINDS: Tuple[Tuple[str, str, str], ...] = (
    ("time_slice", "wheel", "wheel_occupied"),
    ("memory", "memory", "memory_occupied"),
    ("connections", "max_connections", "connections_occupied"),
    ("bandwidth_in", "bandwidth_in", "bandwidth_in_occupied"),
    ("bandwidth_out", "bandwidth_out", "bandwidth_out_occupied"),
)


@dataclass
class AllocationVerdict:
    """The verifier's judgement on one allocation of a bundle."""

    application: str
    rung: Optional[str]
    verdict: str
    reasons: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict != VERDICT_REFUTED


@dataclass
class CertificationReport:
    """Per-allocation verdicts for one bundle."""

    verdicts: List[AllocationVerdict] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        """True when no allocation was refuted."""
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def refuted(self) -> List[AllocationVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def summary(self) -> str:
        lines = []
        for verdict in self.verdicts:
            rung = f" [{verdict.rung}]" if verdict.rung else ""
            lines.append(f"{verdict.application}{rung}: {verdict.verdict}")
            for reason in verdict.reasons:
                lines.append(f"  - {reason}")
        return "\n".join(lines)


def _repetition_vector(graph_data: Dict[str, Any]) -> Optional[Dict[str, int]]:
    """Smallest positive integer repetition vector, or None if none exists.

    Own implementation (rate propagation with exact fractions), used
    instead of :mod:`repro.sdf.repetition` so the verifier does not
    inherit its bugs.
    """
    actors = [entry["name"] for entry in graph_data.get("actors", [])]
    if not actors or len(set(actors)) != len(actors):
        return None
    neighbours: Dict[str, List[Tuple[str, Fraction]]] = {
        name: [] for name in actors
    }
    for channel in graph_data.get("channels", []):
        src, dst = channel.get("src"), channel.get("dst")
        production = channel.get("production", 0)
        consumption = channel.get("consumption", 0)
        if (
            src not in neighbours
            or dst not in neighbours
            or production < 1
            or consumption < 1
        ):
            return None
        neighbours[src].append((dst, Fraction(production, consumption)))
        neighbours[dst].append((src, Fraction(consumption, production)))
    rates: Dict[str, Fraction] = {}
    for root in actors:
        if root in rates:
            continue
        rates[root] = Fraction(1)
        stack = [root]
        while stack:
            actor = stack.pop()
            for other, ratio in neighbours[actor]:
                expected = rates[actor] * ratio
                if other in rates:
                    if rates[other] != expected:
                        return None
                else:
                    rates[other] = expected
                    stack.append(other)
    scale = 1
    for value in rates.values():
        scale = scale * value.denominator // gcd(scale, value.denominator)
    counts = {actor: int(value * scale) for actor, value in rates.items()}
    common = 0
    for value in counts.values():
        common = gcd(common, value)
    if common > 1:
        counts = {actor: value // common for actor, value in counts.items()}
    return counts


def _check_entry(
    entry: Dict[str, Any],
    tiles: Dict[str, Dict[str, Any]],
    connections: set,
    occupancy: Dict[str, Dict[str, int]],
    architecture_data: Dict[str, Any],
) -> AllocationVerdict:
    """All checks for one allocation; commits its claims to ``occupancy``."""
    reasons: List[str] = []

    def flag(message: str) -> None:
        reasons.append(message)

    app_data = entry.get("application") or {}
    name = app_data.get("name", "<unnamed>")
    rung = entry.get("rung")
    graph_data = app_data.get("graph") or {}
    actor_names = [a.get("name") for a in graph_data.get("actors", [])]

    gamma = _repetition_vector(graph_data)
    if gamma is None:
        flag("application graph has no repetition vector (inconsistent)")

    # -- binding covers exactly the graph's actors ---------------------
    binding: Dict[str, str] = entry.get("binding") or {}
    if set(binding) != set(actor_names):
        flag("binding does not cover exactly the application's actors")
    bad_tiles = sorted(
        {tile for tile in binding.values() if tile not in tiles}
    )
    if bad_tiles:
        flag(f"binding targets unknown tiles {bad_tiles}")
    if reasons:
        return AllocationVerdict(name, rung, VERDICT_REFUTED, reasons)

    used = []
    for actor, tile in binding.items():
        if tile not in used:
            used.append(tile)
    bound_on: Dict[str, List[str]] = {tile: [] for tile in used}
    for actor in actor_names:  # graph order, like the binder
        bound_on[binding[actor]].append(actor)

    # -- per-tile resource demand, re-summed from the declarations -----
    requirements = app_data.get("actors") or {}
    channel_reqs = app_data.get("channels") or {}
    demand = {
        tile: {
            "memory": 0,
            "connections": 0,
            "bandwidth_in": 0,
            "bandwidth_out": 0,
        }
        for tile in used
    }
    for tile in used:
        processor = tiles[tile].get("processor_type")
        for actor in bound_on[tile]:
            option = (requirements.get(actor) or {}).get(processor)
            if option is None:
                flag(
                    f"actor {actor!r} cannot run on processor type "
                    f"{processor!r} of tile {tile!r}"
                )
                continue
            demand[tile]["memory"] += int(option.get("memory", 0))
    for channel in graph_data.get("channels", []):
        req = channel_reqs.get(channel["name"]) or {}
        token_size = int(req.get("token_size", 1))
        bandwidth = int(req.get("bandwidth", 0))
        src_tile = binding[channel["src"]]
        dst_tile = binding[channel["dst"]]
        if src_tile == dst_tile:
            demand[src_tile]["memory"] += (
                int(req.get("buffer_tile", 0)) * token_size
            )
            continue
        demand[src_tile]["memory"] += (
            int(req.get("buffer_src", 0)) * token_size
        )
        demand[dst_tile]["memory"] += (
            int(req.get("buffer_dst", 0)) * token_size
        )
        demand[src_tile]["connections"] += 1
        demand[dst_tile]["connections"] += 1
        demand[src_tile]["bandwidth_out"] += bandwidth
        demand[dst_tile]["bandwidth_in"] += bandwidth
        if bandwidth < 1:
            flag(
                f"channel {channel['name']!r} crosses tiles without "
                "bandwidth (beta = 0)"
            )
        if (src_tile, dst_tile) not in connections:
            flag(
                f"channel {channel['name']!r} needs a connection "
                f"{src_tile!r} -> {dst_tile!r} that does not exist"
            )

    # -- claims cover the demand and fit the remaining capacity --------
    slices: Dict[str, int] = {
        tile: int(size) for tile, size in (entry.get("slices") or {}).items()
    }
    claims: Dict[str, Dict[str, int]] = {
        tile: {key: int(value) for key, value in claim.items()}
        for tile, claim in (entry.get("reservation") or {}).items()
    }
    if set(claims) != set(used):
        flag("reservation does not claim exactly the used tiles")
    if set(slices) != set(used):
        flag("slice table does not cover exactly the used tiles")
    for tile in used:
        claim = claims.get(tile)
        if claim is None:
            continue
        size = slices.get(tile, 0)
        if size < 1:
            flag(f"tile {tile!r}: empty time slice")
        if claim.get("time_slice", 0) != size:
            flag(
                f"tile {tile!r}: reserved time slice "
                f"{claim.get('time_slice', 0)} does not match the slice "
                f"table ({size})"
            )
        for kind in ("memory", "connections", "bandwidth_in", "bandwidth_out"):
            if claim.get(kind, 0) < demand[tile][kind]:
                flag(
                    f"tile {tile!r}: {kind} claim {claim.get(kind, 0)} "
                    f"below the re-computed demand {demand[tile][kind]}"
                )
    # commit the claims in bundle order even when refuted: later
    # allocations are judged against the occupancy the bundle asserts
    for tile, claim in claims.items():
        if tile not in tiles:
            flag(f"reservation claims unknown tile {tile!r}")
            continue
        for claim_key, capacity_key, _ in _RESOURCE_KINDS:
            occupancy[tile][capacity_key] += claim.get(claim_key, 0)
            if occupancy[tile][capacity_key] > tiles[tile].get(
                capacity_key, 0
            ):
                flag(
                    f"tile {tile!r}: committed {capacity_key} "
                    f"{occupancy[tile][capacity_key]} exceeds capacity "
                    f"{tiles[tile].get(capacity_key, 0)}"
                )

    # -- schedules: exactly the bound actors, gamma multiplicity -------
    schedules: Dict[str, Any] = entry.get("schedules") or {}
    if schedules:
        if set(schedules) != set(used):
            flag("schedules do not cover exactly the used tiles")
        for tile, schedule in schedules.items():
            expected = set(bound_on.get(tile, ()))
            periodic = list((schedule or {}).get("periodic") or [])
            transient = list((schedule or {}).get("transient") or [])
            if not periodic:
                flag(f"tile {tile!r}: empty periodic schedule")
                continue
            if set(periodic) != expected or not set(transient) <= expected:
                flag(
                    f"tile {tile!r}: schedule does not cover exactly the "
                    "actors bound to it"
                )
                continue
            if gamma is None:
                continue
            counts = {actor: periodic.count(actor) for actor in expected}
            anchor = periodic[0]
            for actor, count in counts.items():
                if count * gamma[anchor] != counts[anchor] * gamma[actor]:
                    flag(
                        f"tile {tile!r}: periodic schedule fires "
                        f"{actor!r} {count}x, not in repetition-vector "
                        "proportion"
                    )

    # -- throughput claim ----------------------------------------------
    claimed: Optional[Fraction] = None
    constraint: Optional[Fraction] = None
    try:
        claimed = Fraction(entry.get("achieved_throughput", ""))
        constraint = Fraction(app_data.get("throughput_constraint", "0"))
    except (TypeError, ValueError, ZeroDivisionError):
        flag("unreadable throughput claim or constraint")
    if claimed is not None and constraint is not None and claimed < constraint:
        flag(
            f"claimed throughput {claimed} is below the constraint "
            f"{constraint}"
        )
    output_actor = app_data.get("output_actor")
    if output_actor not in set(actor_names):
        flag(f"output actor {output_actor!r} is not in the graph")

    if not schedules:
        # TDMA-inflation baseline: no schedule, no certificate — the
        # claim rests on the worst-case model, a sound lower bound
        if entry.get("certificate") is not None:
            flag("schedule-less allocation carries a certificate")
        verdict = VERDICT_REFUTED if reasons else VERDICT_SOUND_LOWER_BOUND
        return AllocationVerdict(name, rung, verdict, reasons)

    # -- certificate replay --------------------------------------------
    obs = get_metrics()
    certificate = entry.get("certificate")
    if certificate is None:
        flag("allocation claims a scheduled throughput but has no certificate")
        return AllocationVerdict(name, rung, VERDICT_REFUTED, reasons)
    obs.counter("verify.certificates_checked")
    try:
        rate = _replay_allocation_certificate(
            entry, certificate, architecture_data, used, slices, tiles
        )
    except (RefutationError, CertificateFormatError) as error:
        obs.counter("verify.certificates_refuted")
        flag(f"certificate refuted: {error}")
        return AllocationVerdict(name, rung, VERDICT_REFUTED, reasons)
    if claimed is not None and rate is not None and claimed > rate:
        obs.counter("verify.certificates_refuted")
        flag(
            f"claimed throughput {claimed} exceeds the certificate's "
            f"replayed rate {rate}"
        )
    verdict = VERDICT_REFUTED if reasons else VERDICT_CERTIFIED
    return AllocationVerdict(name, rung, verdict, reasons)


def _replay_allocation_certificate(
    entry: Dict[str, Any],
    certificate: Dict[str, Any],
    architecture_data: Dict[str, Any],
    used: List[str],
    slices: Dict[str, int],
    tiles: Dict[str, Dict[str, Any]],
) -> Optional[Fraction]:
    """Match the certificate against a rebuilt binding-aware graph and
    replay it; returns the replayed rate of the output actor.

    Raises :class:`RefutationError` on any mismatch.  Only the *data
    model* (graph construction) is shared with the allocator here; all
    timing arithmetic lives in :mod:`repro.verify.replay`.
    """
    # deferred imports keep repro.verify importable without the full
    # allocator stack loaded
    from repro.appmodel.binding import Binding
    from repro.appmodel.binding_aware import (
        InfeasibleBindingError,
        build_binding_aware_graph,
    )
    from repro.appmodel.serialization import application_from_dict
    from repro.arch.serialization import architecture_from_dict
    from repro.sdf.serialization import SerializationError

    try:
        application = application_from_dict(entry["application"])
        architecture = architecture_from_dict(architecture_data)
        binding = Binding(dict(entry["binding"]))
        bag = build_binding_aware_graph(
            application, architecture, binding, slices=dict(slices)
        )
    except (
        SerializationError,
        InfeasibleBindingError,
        KeyError,
        ValueError,
    ) as error:
        raise RefutationError(
            f"cannot rebuild the binding-aware graph: {error}"
        ) from error

    graph = bag.graph
    if certificate.get("kind") != "constrained":
        raise RefutationError(
            f"expected a constrained certificate, got "
            f"{certificate.get('kind')!r}"
        )
    if list(certificate.get("actors", [])) != list(graph.actor_names):
        raise RefutationError(
            "certificate actors do not match the binding-aware graph"
        )
    if list(certificate.get("channels", [])) != list(graph.channel_names):
        raise RefutationError(
            "certificate channels do not match the binding-aware graph"
        )
    expected_times = [
        graph.actor(actor).execution_time for actor in graph.actor_names
    ]
    if list(certificate.get("execution_times", [])) != expected_times:
        raise RefutationError(
            "certificate execution times do not match the binding-aware "
            "graph (wrong processor assignment or slice table)"
        )

    cert_tiles = {
        tile.get("name"): tile for tile in certificate.get("tiles", [])
    }
    if set(cert_tiles) != set(used):
        raise RefutationError(
            "certificate tiles do not match the tiles the binding uses"
        )
    schedules = entry.get("schedules") or {}
    for tile_name in used:
        cert_tile = cert_tiles[tile_name]
        schedule = schedules.get(tile_name) or {}
        if cert_tile.get("wheel") != tiles[tile_name].get("wheel"):
            raise RefutationError(
                f"tile {tile_name!r}: certificate wheel differs from the "
                "architecture"
            )
        if cert_tile.get("slice_size") != slices.get(tile_name):
            raise RefutationError(
                f"tile {tile_name!r}: certificate slice differs from the "
                "allocation's slice table"
            )
        if list(cert_tile.get("periodic", [])) != list(
            schedule.get("periodic") or []
        ) or list(cert_tile.get("transient", [])) != list(
            schedule.get("transient") or []
        ):
            raise RefutationError(
                f"tile {tile_name!r}: certificate schedule differs from "
                "the allocation's static order"
            )

    topology = {
        name: {
            "src": graph.channel(name).src,
            "dst": graph.channel(name).dst,
            "production": graph.channel(name).production,
            "consumption": graph.channel(name).consumption,
            "tokens": graph.channel(name).tokens,
        }
        for name in graph.channel_names
    }
    replayed = replay_constrained(certificate, topology)
    check_window_reachable(certificate, topology)
    output = entry["application"].get("output_actor")
    return Fraction(
        replayed["firings"].get(output, 0), replayed["period"]
    )


def certify_allocation(bundle: Dict[str, Any]) -> CertificationReport:
    """Certify every allocation of a bundle (plain-dict form).

    ``bundle`` is the document :func:`repro.appmodel.serialization.
    bundle_to_dict` writes: the architecture *before* the flow committed
    anything, plus the committed allocations in order.  Returns a
    :class:`CertificationReport`; ``report.certified`` is False as soon
    as one allocation is refuted.
    """
    from repro.appmodel.serialization import bundle_from_dict

    bundle = bundle_from_dict(bundle)
    obs = get_metrics()
    architecture_data = bundle.get("architecture") or {}
    tiles = {
        tile.get("name"): tile
        for tile in architecture_data.get("tiles", [])
    }
    connections = {
        (link.get("src"), link.get("dst"))
        for link in architecture_data.get("connections", [])
    }
    # running occupancy, seeded with what the platform already carried
    occupancy = {
        name: {
            capacity_key: int(tile.get(occupied_key, 0))
            for _, capacity_key, occupied_key in _RESOURCE_KINDS
        }
        for name, tile in tiles.items()
    }
    tr = get_trace()
    report = CertificationReport()
    for entry in bundle.get("allocations", []):
        verdict = _check_entry(
            entry, tiles, connections, occupancy, architecture_data
        )
        report.verdicts.append(verdict)
        if tr.enabled:
            tr.instant(
                "verify",
                "verdict",
                application=verdict.application,
                verdict=verdict.verdict,
            )
        if verdict.verdict == VERDICT_CERTIFIED:
            obs.counter("verify.allocations_certified")
        elif verdict.verdict == VERDICT_SOUND_LOWER_BOUND:
            obs.counter("verify.allocations_sound_lower_bound")
        else:
            obs.counter("verify.allocations_refuted")
    return report


def certify_flow(architecture, result) -> CertificationReport:
    """Certify a live :class:`~repro.core.flow.FlowResult`.

    ``architecture`` must be the architecture *before* the flow ran
    (e.g. a copy taken beforehand); the flow mutates the one it is given.
    Serialises to the bundle form and delegates to
    :func:`certify_allocation`, so live results and reloaded files take
    the identical code path.
    """
    from repro.appmodel.serialization import bundle_to_dict

    return certify_allocation(
        bundle_to_dict(
            architecture, result.allocations, rungs=result.rungs
        )
    )
