"""Independent verification of allocation results (``repro.verify``).

The allocator's outputs carry compact evidence — periodic-phase
certificates emitted by the throughput engines and resource claims per
tile — and this package checks that evidence without trusting the code
that produced it: certificates are replayed with independently written
semantics (:mod:`repro.verify.replay`), resource demands are re-summed
from the declarations (:mod:`repro.verify.allocation`).

Entry points:

* :func:`certify_allocation` — certify a saved allocation bundle;
* :func:`certify_flow` — certify a live flow result;
* :func:`replay_certificate` / :func:`replay_self_timed` /
  :func:`replay_constrained` — replay one certificate;
* ``repro-alloc verify`` — the CLI front end (exit 0 certified,
  4 refuted).

See ``docs/VERIFICATION.md`` for formats and the trust model.
"""

from repro.verify.allocation import (
    VERDICT_CERTIFIED,
    VERDICT_REFUTED,
    VERDICT_SOUND_LOWER_BOUND,
    AllocationVerdict,
    CertificationReport,
    certify_allocation,
    certify_flow,
)
from repro.verify.certificate import (
    CERTIFICATE_FORMAT,
    CERTIFICATE_VERSION,
    CertificateFormatError,
    validate_certificate,
)
from repro.verify.replay import (
    RefutationError,
    check_window_reachable,
    replay_certificate,
    replay_constrained,
    replay_self_timed,
)

__all__ = [
    "AllocationVerdict",
    "CERTIFICATE_FORMAT",
    "CERTIFICATE_VERSION",
    "CertificateFormatError",
    "CertificationReport",
    "RefutationError",
    "VERDICT_CERTIFIED",
    "VERDICT_REFUTED",
    "VERDICT_SOUND_LOWER_BOUND",
    "certify_allocation",
    "certify_flow",
    "check_window_reachable",
    "replay_certificate",
    "replay_constrained",
    "replay_self_timed",
    "validate_certificate",
]
