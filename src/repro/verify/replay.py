"""Independent replay of periodic-phase certificates.

A certificate claims: *starting from this recurrent state, the graph
fires these actors this many times within exactly this period and
returns to the same state*.  If that claim holds, repeating the window
forever is a legal execution, so ``firings[a] / period`` is a throughput
the system genuinely achieves — regardless of how the engine that
emitted the certificate found it.

This module checks the claim from scratch.  It deliberately shares **no
code** with :mod:`repro.throughput.state_space` or
:mod:`repro.throughput.constrained`: the token game, the TDMA slice
gating arithmetic and the static-order bookkeeping are all reimplemented
here (differently where possible — e.g. slice gating inverts the
cumulative busy-time function instead of walking rotation remainders).
A bug in an engine therefore cannot vouch for itself.

Replay cost is O(period): the execution is event-driven and every event
advances time by at least one unit.  A certificate that deadlocks,
misses the claimed period, fails to return to its start state, or
reports wrong firing counts raises :class:`RefutationError`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.verify.certificate import validate_certificate

#: cap on zero-duration firings at one time instant during replay
_ZERO_BURST_GUARD = 1_000_000


class RefutationError(Exception):
    """A certificate's claimed periodic phase does not replay."""


def _refute(message: str) -> None:
    raise RefutationError(message)


def _wire(
    certificate: Dict[str, Any], topology: Mapping[str, Mapping[str, Any]]
) -> Tuple[List[List[Tuple[int, int]]], List[List[Tuple[int, int]]]]:
    """Per-actor (channel, rate) input/output lists from the topology.

    ``topology`` maps each certificate channel name to its endpoints and
    rates (``src``/``dst``/``production``/``consumption``) — supplied by
    the caller from the *graph*, never taken from the certificate, so a
    forged certificate cannot invent a more convenient wiring.
    """
    actors = certificate["actors"]
    index = {name: i for i, name in enumerate(actors)}
    inputs: List[List[Tuple[int, int]]] = [[] for _ in actors]
    outputs: List[List[Tuple[int, int]]] = [[] for _ in actors]
    for position, name in enumerate(certificate["channels"]):
        if name not in topology:
            _refute(f"certificate channel {name!r} is not in the graph")
        channel = topology[name]
        src, dst = channel["src"], channel["dst"]
        if src not in index or dst not in index:
            _refute(
                f"channel {name!r} connects actors outside the certificate"
            )
        production = channel["production"]
        consumption = channel["consumption"]
        if (
            not isinstance(production, int)
            or not isinstance(consumption, int)
            or production < 1
            or consumption < 1
        ):
            _refute(f"channel {name!r} has non-positive rates")
        outputs[index[src]].append((position, production))
        inputs[index[dst]].append((position, consumption))
    return inputs, outputs


def replay_self_timed(
    certificate: Dict[str, Any], topology: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """Replay a ``"self-timed"`` certificate; returns ``{period, firings}``.

    Raises :class:`RefutationError` when the claimed window is not a
    legal periodic phase of the self-timed execution.
    """
    cert = validate_certificate(certificate)
    if cert["kind"] != "self-timed":
        _refute(f"expected a self-timed certificate, got {cert['kind']!r}")
    actors: List[str] = cert["actors"]
    count = len(actors)
    inputs, outputs = _wire(cert, topology)
    times: List[int] = cert["execution_times"]
    auto: bool = cert["auto_concurrency"]
    period: int = cert["period"]

    start_tokens = list(cert["tokens"])
    start_active = [sorted(entry) for entry in cert["active"]]
    if not auto and any(len(entry) > 1 for entry in start_active):
        _refute(
            "certificate claims concurrent firings of one actor although "
            "auto-concurrency is off"
        )

    tokens = list(start_tokens)
    active = [list(entry) for entry in start_active]
    fired = [0] * count
    burst = [0]

    def startable(actor: int) -> bool:
        if not auto and active[actor]:
            return False
        return all(tokens[c] >= need for c, need in inputs[actor])

    def start_phase() -> None:
        progress = True
        while progress:
            progress = False
            for actor in range(count):
                while startable(actor):
                    for channel, need in inputs[actor]:
                        tokens[channel] -= need
                    if times[actor] == 0:
                        for channel, out in outputs[actor]:
                            tokens[channel] += out
                        fired[actor] += 1
                        burst[0] += 1
                        if burst[0] > _ZERO_BURST_GUARD:
                            _refute(
                                "unbounded zero-duration firing burst "
                                "during replay"
                            )
                    else:
                        active[actor].append(times[actor])
                    progress = True
            # only zero-duration completions can enable further actors
            # within the same instant
            if not any(tau == 0 for tau in times):
                break

    # the engine records states *after* exhausting every enabled firing,
    # so a genuine window state is a fixed point of the start phase
    if any(startable(actor) for actor in range(count)):
        _refute("claimed window state still has enabled firings")

    elapsed = 0
    while elapsed < period:
        remaining = [r for entry in active for r in entry]
        if not remaining:
            _refute("claimed periodic phase deadlocks")
        step = min(remaining)
        if elapsed + step > period:
            _refute("no completion event lands on the claimed period")
        elapsed += step
        for actor in range(count):
            entry = active[actor]
            if not entry:
                continue
            finished = sum(1 for r in entry if r == step)
            active[actor] = [r - step for r in entry if r > step]
            if finished:
                for channel, out in outputs[actor]:
                    tokens[channel] += out * finished
                fired[actor] += finished
        start_phase()

    if tokens != start_tokens:
        _refute("token distribution does not recur after the claimed period")
    if any(sorted(active[a]) != start_active[a] for a in range(count)):
        _refute("active firings do not recur after the claimed period")
    observed = {name: fired[i] for i, name in enumerate(actors)}
    if observed != cert["firings"]:
        _refute("firing counts inside the window do not match the claim")
    return {"period": period, "firings": observed}


def replay_certificate(
    certificate: Dict[str, Any], topology: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """Replay a certificate of either kind (dispatch on ``kind``)."""
    cert = validate_certificate(certificate)
    if cert["kind"] == "self-timed":
        return replay_self_timed(cert, topology)
    return replay_constrained(cert, topology)


def check_window_reachable(
    certificate: Dict[str, Any], topology: Mapping[str, Mapping[str, Any]]
) -> None:
    """Token-invariant check tying the window state to the initial state.

    Replay alone proves the window is *periodic*; this check ties it to
    the actual graph: every linear token invariant (any quantity
    conserved by all firings, e.g. the token sum around a cycle) must
    take the same value in the window state as in the initial token
    distribution.  Concretely, the window's *effective* token vector —
    claimed tokens plus the inputs held by in-flight firings — must
    differ from the initial vector by a rational combination of actor
    firing effects.  A forged certificate that simply inflates token
    counts on a bounded cycle fails here even though it replays.

    ``topology`` entries must carry ``tokens`` (the graph's initial
    tokens) in addition to the endpoint/rate fields.  Raises
    :class:`RefutationError` when an invariant is violated.
    """
    cert = validate_certificate(certificate)
    actors: List[str] = cert["actors"]
    index = {name: i for i, name in enumerate(actors)}
    channels: List[str] = cert["channels"]
    width = len(channels)

    if cert["kind"] == "self-timed":
        in_flight = [len(entry) for entry in cert["active"]]
    else:
        in_flight = [len(entry) for entry in cert["unscheduled_active"]]
        for firing in cert["tile_active"]:
            if firing is not None:
                in_flight[firing[0]] += 1

    effects: List[List[Fraction]] = [
        [Fraction(0)] * width for _ in actors
    ]
    effective: List[Fraction] = []
    initial: List[int] = []
    for position, name in enumerate(channels):
        if name not in topology:
            _refute(f"certificate channel {name!r} is not in the graph")
        channel = topology[name]
        tokens = channel.get("tokens")
        if not isinstance(tokens, int) or tokens < 0:
            _refute(f"channel {name!r} has no initial token count")
        initial.append(tokens)
        effects[index[channel["src"]]][position] += channel["production"]
        effects[index[channel["dst"]]][position] -= channel["consumption"]
        # roll in-flight firings back to their pre-consumption marking
        effective.append(
            Fraction(
                cert["tokens"][position]
                + channel["consumption"] * in_flight[index[channel["dst"]]]
            )
        )

    # Gaussian elimination: reduce each firing-effect vector, keep the
    # pivots, then reduce the window delta — a non-zero residue means
    # the delta is outside the span, i.e. some invariant changed.
    pivots: List[Tuple[int, List[Fraction]]] = []

    def reduce(vector: List[Fraction]) -> List[Fraction]:
        for pivot_column, pivot_vector in pivots:
            if vector[pivot_column]:
                factor = vector[pivot_column] / pivot_vector[pivot_column]
                vector = [
                    x - factor * y for x, y in zip(vector, pivot_vector)
                ]
        return vector

    for effect in effects:
        reduced = reduce(list(effect))
        for column, value in enumerate(reduced):
            if value:
                pivots.append((column, reduced))
                break
    delta = reduce(
        [window - start for window, start in zip(effective, initial)]
    )
    if any(delta):
        _refute(
            "window token distribution violates a token invariant of the "
            "graph (unreachable from the initial tokens)"
        )


# ---------------------------------------------------------------------------
# constrained replay: static-order schedules + TDMA slice gating


def _slice_busy(
    start: int, end: int, wheel: int, size: int, offset: int
) -> int:
    """Slice-gated progress a tile makes in ``[start, end)``.

    Independent formulation: cumulative busy units up to an instant,
    differenced — not the engine's rotation-remainder walk.
    """
    if size >= wheel:
        return end - start

    def cumulative(instant: int) -> int:
        rotations, into = divmod(instant - offset, wheel)
        return rotations * size + min(into, size)

    return cumulative(end) - cumulative(start)


def _slice_finish(
    start: int, work: int, wheel: int, size: int, offset: int
) -> Optional[int]:
    """Instant at which ``work`` gated units complete; None if never.

    Inverts the cumulative busy-time function: the ``n``-th busy unit of
    the wheel (counting from the slice origin) ends at
    ``offset + (n-1)//size * wheel + ((n-1) % size + 1)``.
    """
    if work <= 0:
        return start
    if size >= wheel:
        return start + work
    if size == 0:
        return None
    rotations, into = divmod(start - offset, wheel)
    done_before = rotations * size + min(into, size)
    target = done_before + work
    full, part = divmod(target, size)
    if part == 0:
        full -= 1
        part = size
    return offset + full * wheel + part


def replay_constrained(
    certificate: Dict[str, Any], topology: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """Replay a ``"constrained"`` certificate; returns ``{period, firings}``.

    The replay honours the same three rules the engine claims to: a
    scheduled actor starts only at the head of its tile's static order
    on an idle tile; a tile runs one firing at a time; scheduled work
    progresses only inside the tile's TDMA slice.  All three are
    enforced with freshly written logic.
    """
    cert = validate_certificate(certificate)
    if cert["kind"] != "constrained":
        _refute(f"expected a constrained certificate, got {cert['kind']!r}")
    actors: List[str] = cert["actors"]
    count = len(actors)
    index = {name: i for i, name in enumerate(actors)}
    inputs, outputs = _wire(cert, topology)
    times: List[int] = cert["execution_times"]
    tiles: List[Dict[str, Any]] = cert["tiles"]
    period: int = cert["period"]
    window_start: int = cert["window_start"]

    # a recurrent state must present the same wheel phase on every tile
    for tile in tiles:
        if period % tile["wheel"] != 0:
            _refute(
                f"period {period} is not a whole number of wheel rotations "
                f"on tile {tile['name']!r}"
            )

    tile_of: List[Optional[int]] = [None] * count
    for tile_idx, tile in enumerate(tiles):
        for name in list(tile["transient"]) + list(tile["periodic"]):
            if name not in index:
                _refute(
                    f"schedule of tile {tile['name']!r} mentions unknown "
                    f"actor {name!r}"
                )
            actor = index[name]
            if tile_of[actor] not in (None, tile_idx):
                _refute(f"actor {name!r} scheduled on more than one tile")
            tile_of[actor] = tile_idx

    def entry_at(tile: Dict[str, Any], position: int) -> int:
        transient, periodic = tile["transient"], tile["periodic"]
        if position < len(transient):
            return index[transient[position]]
        return index[periodic[(position - len(transient)) % len(periodic)]]

    def fold(tile: Dict[str, Any], position: int) -> int:
        transient, periodic = tile["transient"], tile["periodic"]
        if position < len(transient):
            return position
        return len(transient) + (position - len(transient)) % len(periodic)

    start_tokens = list(cert["tokens"])
    start_unscheduled = [sorted(entry) for entry in cert["unscheduled_active"]]
    start_tile_active = [
        tuple(entry) if entry is not None else None
        for entry in cert["tile_active"]
    ]
    for actor, entry in enumerate(start_unscheduled):
        if entry and tile_of[actor] is not None:
            _refute(
                f"scheduled actor {actors[actor]!r} claimed as an "
                "unscheduled firing"
            )
    for tile_idx, firing in enumerate(start_tile_active):
        if firing is not None and tile_of[firing[0]] != tile_idx:
            _refute(
                f"tile {tiles[tile_idx]['name']!r} claimed to execute an "
                "actor not scheduled on it"
            )

    now = window_start  # absolute: the wheel phase is part of the state
    tokens = list(start_tokens)
    unscheduled = [list(entry) for entry in start_unscheduled]
    tile_active = list(start_tile_active)
    positions = [tile["position"] for tile in tiles]
    fired = [0] * count
    burst = [0]

    def tokens_ready(actor: int) -> bool:
        return all(tokens[c] >= need for c, need in inputs[actor])

    def consume(actor: int) -> None:
        for channel, need in inputs[actor]:
            tokens[channel] -= need

    def produce(actor: int, repeats: int = 1) -> None:
        for channel, out in outputs[actor]:
            tokens[channel] += out * repeats

    def any_startable() -> bool:
        for actor in range(count):
            if tile_of[actor] is None and tokens_ready(actor):
                return True
        for tile_idx, tile in enumerate(tiles):
            if tile_active[tile_idx] is None and tokens_ready(
                entry_at(tile, positions[tile_idx])
            ):
                return True
        return False

    def start_phase() -> None:
        progress = True
        while progress:
            progress = False
            for actor in range(count):
                if tile_of[actor] is not None:
                    continue
                while tokens_ready(actor):
                    consume(actor)
                    if times[actor] == 0:
                        produce(actor)
                        fired[actor] += 1
                        burst[0] += 1
                        if burst[0] > _ZERO_BURST_GUARD:
                            _refute(
                                "unbounded zero-duration firing burst "
                                "during replay"
                            )
                    else:
                        unscheduled[actor].append(times[actor])
                    progress = True
            for tile_idx, tile in enumerate(tiles):
                if tile_active[tile_idx] is not None:
                    continue
                actor = entry_at(tile, positions[tile_idx])
                if tokens_ready(actor):
                    consume(actor)
                    positions[tile_idx] += 1
                    if times[actor] == 0:
                        produce(actor)
                        fired[actor] += 1
                    else:
                        tile_active[tile_idx] = (actor, times[actor])
                    progress = True

    if any_startable():
        _refute("claimed window state still has enabled firings")

    window_end = window_start + period
    while now < window_end:
        next_event: Optional[int] = None
        for entry in unscheduled:
            for remaining in entry:
                candidate = now + remaining
                if next_event is None or candidate < next_event:
                    next_event = candidate
        for tile_idx, firing in enumerate(tile_active):
            if firing is None:
                continue
            tile = tiles[tile_idx]
            candidate = _slice_finish(
                now,
                firing[1],
                tile["wheel"],
                tile["slice_size"],
                tile["slice_start"],
            )
            if candidate is None:
                continue
            if next_event is None or candidate < next_event:
                next_event = candidate
        if next_event is None:
            _refute("claimed periodic phase deadlocks")
        if next_event > window_end:
            _refute("no completion event lands on the claimed period")
        step = next_event - now
        for actor in range(count):
            entry = unscheduled[actor]
            if not entry:
                continue
            finished = sum(1 for r in entry if r <= step)
            unscheduled[actor] = [r - step for r in entry if r > step]
            if finished:
                produce(actor, finished)
                fired[actor] += finished
        for tile_idx, firing in enumerate(tile_active):
            if firing is None:
                continue
            tile = tiles[tile_idx]
            progressed = _slice_busy(
                now,
                next_event,
                tile["wheel"],
                tile["slice_size"],
                tile["slice_start"],
            )
            remaining = firing[1] - progressed
            if remaining <= 0:
                produce(firing[0])
                fired[firing[0]] += 1
                tile_active[tile_idx] = None
            else:
                tile_active[tile_idx] = (firing[0], remaining)
        now = next_event
        start_phase()

    if tokens != start_tokens:
        _refute("token distribution does not recur after the claimed period")
    if any(
        sorted(unscheduled[a]) != start_unscheduled[a] for a in range(count)
    ):
        _refute("unscheduled firings do not recur after the claimed period")
    if tile_active != start_tile_active:
        _refute("tile firings do not recur after the claimed period")
    for tile_idx, tile in enumerate(tiles):
        if fold(tile, positions[tile_idx]) != tile["position"]:
            _refute(
                f"schedule position on tile {tile['name']!r} does not "
                "recur after the claimed period"
            )
    observed = {name: fired[i] for i, name in enumerate(actors)}
    if observed != cert["firings"]:
        _refute("firing counts inside the window do not match the claim")
    return {"period": period, "firings": observed}
