"""Schema validation for periodic-phase certificates.

A certificate is the compact evidence a throughput engine emits at the
moment it detects a recurrent state: the recurrent state itself, the
number of firings per actor inside one period, and the period length.
It is deliberately a plain JSON-native dict (lists, ints, strings) so
that it survives serialisation bit-for-bit and can be checked by code
that shares nothing with the engines (:mod:`repro.verify.replay`).

Two kinds exist:

* ``"self-timed"`` — emitted by
  :class:`repro.throughput.state_space.SelfTimedExecution` for one
  strongly connected component;
* ``"constrained"`` — emitted by the §8.2 engine
  (:mod:`repro.throughput.constrained`) for a binding-aware graph under
  static-order schedules and TDMA slices.

See ``docs/VERIFICATION.md`` for the full field reference.
"""

from __future__ import annotations

from typing import Any, Dict

CERTIFICATE_FORMAT = "repro-certificate"
CERTIFICATE_VERSION = 1


class CertificateFormatError(ValueError):
    """A certificate is structurally malformed (not merely wrong)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CertificateFormatError(message)


def _int_list(value: Any) -> bool:
    return isinstance(value, list) and all(
        isinstance(item, int) and not isinstance(item, bool) for item in value
    )


def validate_certificate(certificate: Any) -> Dict[str, Any]:
    """Check the envelope and per-kind structure; returns the certificate.

    Raises :class:`CertificateFormatError` on malformed input.  This is
    a *format* check only — whether the claimed periodic phase actually
    replays is :mod:`repro.verify.replay`'s job.
    """
    _require(isinstance(certificate, dict), "certificate must be an object")
    _require(
        certificate.get("format") == CERTIFICATE_FORMAT,
        f"certificate format must be {CERTIFICATE_FORMAT!r}",
    )
    _require(
        certificate.get("version") == CERTIFICATE_VERSION,
        f"unsupported certificate version {certificate.get('version')!r}",
    )
    kind = certificate.get("kind")
    _require(
        kind in ("self-timed", "constrained"),
        f"unknown certificate kind {kind!r}",
    )

    actors = certificate.get("actors")
    _require(
        isinstance(actors, list)
        and actors
        and all(isinstance(a, str) for a in actors),
        "certificate must list its actors",
    )
    channels = certificate.get("channels")
    _require(
        isinstance(channels, list)
        and all(isinstance(c, str) for c in channels),
        "certificate must list its channels",
    )
    times = certificate.get("execution_times")
    _require(
        _int_list(times) and len(times) == len(actors),
        "execution_times must be one int per actor",
    )
    _require(all(tau >= 0 for tau in times), "execution times must be >= 0")

    period = certificate.get("period")
    _require(
        isinstance(period, int) and not isinstance(period, bool) and period > 0,
        "period must be a positive integer",
    )
    window_start = certificate.get("window_start")
    _require(
        isinstance(window_start, int) and window_start >= 0,
        "window_start must be a non-negative integer",
    )
    firings = certificate.get("firings")
    _require(
        isinstance(firings, dict)
        and set(firings) == set(actors)
        and all(
            isinstance(count, int) and count >= 0
            for count in firings.values()
        ),
        "firings must map every actor to a non-negative count",
    )
    tokens = certificate.get("tokens")
    _require(
        _int_list(tokens) and len(tokens) == len(channels),
        "tokens must be one int per channel",
    )
    _require(all(count >= 0 for count in tokens), "tokens must be >= 0")

    if kind == "self-timed":
        _require(
            isinstance(certificate.get("auto_concurrency"), bool),
            "self-timed certificate needs auto_concurrency",
        )
        active = certificate.get("active")
        _require(
            isinstance(active, list)
            and len(active) == len(actors)
            and all(_int_list(entry) for entry in active)
            and all(r > 0 for entry in active for r in entry),
            "active must hold positive remaining times per actor",
        )
        return certificate

    # -- constrained ----------------------------------------------------
    tiles = certificate.get("tiles")
    _require(isinstance(tiles, list), "constrained certificate needs tiles")
    for index, tile in enumerate(tiles):
        where = f"tiles[{index}]"
        _require(isinstance(tile, dict), f"{where} must be an object")
        _require(isinstance(tile.get("name"), str), f"{where} needs a name")
        wheel = tile.get("wheel")
        _require(
            isinstance(wheel, int) and wheel > 0,
            f"{where}: wheel must be a positive integer",
        )
        size = tile.get("slice_size")
        _require(
            isinstance(size, int) and 0 <= size <= wheel,
            f"{where}: slice_size outside [0, wheel]",
        )
        offset = tile.get("slice_start", 0)
        _require(
            isinstance(offset, int) and 0 <= offset <= wheel - size,
            f"{where}: slice window does not fit the wheel",
        )
        periodic = tile.get("periodic")
        _require(
            isinstance(periodic, list)
            and periodic
            and all(isinstance(a, str) for a in periodic),
            f"{where}: periodic schedule part must be a non-empty list",
        )
        transient = tile.get("transient", [])
        _require(
            isinstance(transient, list)
            and all(isinstance(a, str) for a in transient),
            f"{where}: transient schedule part must be a list",
        )
        position = tile.get("position")
        _require(
            isinstance(position, int)
            and 0 <= position < len(transient) + len(periodic),
            f"{where}: position outside the folded schedule",
        )
    unscheduled = certificate.get("unscheduled_active")
    _require(
        isinstance(unscheduled, list)
        and len(unscheduled) == len(actors)
        and all(_int_list(entry) for entry in unscheduled)
        and all(r > 0 for entry in unscheduled for r in entry),
        "unscheduled_active must hold positive remaining work per actor",
    )
    tile_active = certificate.get("tile_active")
    _require(
        isinstance(tile_active, list) and len(tile_active) == len(tiles),
        "tile_active must have one entry per tile",
    )
    for entry in tile_active:
        _require(
            entry is None
            or (
                _int_list(entry)
                and len(entry) == 2
                and 0 <= entry[0] < len(actors)
                and entry[1] > 0
            ),
            "tile_active entries must be null or [actor_index, remaining>0]",
        )
    return certificate
