"""Structured JSON logging, null-by-default like the metrics registry.

:func:`get_logger` returns the shared :data:`NULL_LOGGER` no-op unless
logging has been switched on with :func:`configure_logging` (the
``repro-alloc serve`` front end does this), so the service hot paths can
log unconditionally at the cost of an attribute lookup and an empty
call — the same contract the metrics/trace planes obey, and the perf
guard in ``tests/test_performance_guards.py`` covers it.

One record per line::

    {"ts": 1700000000.0, "level": "info", "event": "job.submitted",
     "job": "job-000001", "attempt": 1, ...}

``bind(**fields)`` returns a child logger whose correlation fields
(job id, attempt, component) ride along on every record, which is how
one logger threads through service → journal → sandbox → watchdog.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, IO, Iterator, Optional, Union

from contextlib import contextmanager

from repro.obs.lockcheck import make_lock

__all__ = [
    "JsonLogger",
    "LoggerLike",
    "NULL_LOGGER",
    "NullLogger",
    "configure_logging",
    "disable_logging",
    "get_logger",
    "logging_to",
]

#: Severity order; records below the configured threshold are dropped.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class NullLogger:
    """No-op logger — shared singleton when logging is disabled."""

    enabled = False

    def bind(self, **fields: Any) -> "NullLogger":
        return self

    def debug(self, event: str, **fields: Any) -> None:
        pass

    def info(self, event: str, **fields: Any) -> None:
        pass

    def warning(self, event: str, **fields: Any) -> None:
        pass

    def error(self, event: str, **fields: Any) -> None:
        pass


#: Shared no-op, returned by :func:`get_logger` while logging is off.
NULL_LOGGER = NullLogger()


class JsonLogger:
    """Thread-safe JSON-lines logger over an open text stream.

    Bound children created with :meth:`bind` share the parent's stream,
    lock and level threshold, so records from every component of the
    service interleave whole-line atomically.
    """

    enabled = True

    def __init__(
        self,
        stream: IO[str],
        level: str = "info",
        fields: Optional[Dict[str, Any]] = None,
        _lock: Optional[threading.Lock] = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self.stream = stream
        self.level = level
        self._threshold = LEVELS[level]
        self._fields: Dict[str, Any] = dict(fields or {})
        if _lock is not None:  # bound children share the parent's lock
            self._lock = _lock
        else:
            self._lock = make_lock(
                "repro.obs.log.JsonLogger._lock"
            )  # guards: stream writes (whole-line atomicity)

    def bind(self, **fields: Any) -> "JsonLogger":
        merged = dict(self._fields)
        merged.update(fields)
        return JsonLogger(self.stream, self.level, merged, _lock=self._lock)

    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        if LEVELS[level] < self._threshold:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "event": event,
        }
        record.update(self._fields)
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        try:
            with self._lock:
                # the serialised write is the whole point of this lock:
                # records from every component interleave whole-line
                self.stream.write(line + "\n")  # con-ok: CON003 the write is the critical section
                self.stream.flush()  # con-ok: CON003 flush pairs with the guarded write
        except (OSError, ValueError):
            # A torn pipe or a closed stream must never take the
            # service down with it; logging is best-effort.
            pass

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


#: Structural alias for annotations — either implementation works.
LoggerLike = Union[JsonLogger, NullLogger]

_active: LoggerLike = NULL_LOGGER
_owned_handle: Optional[IO[str]] = None


def get_logger() -> LoggerLike:
    """The process-wide logger (the shared no-op unless configured)."""
    return _active


def configure_logging(
    target: Union[str, IO[str]], level: str = "info"
) -> JsonLogger:
    """Install a :class:`JsonLogger` writing to a path or open stream.

    A path is opened in append mode and closed again by
    :func:`disable_logging`; an open stream stays caller-owned.
    """
    global _active, _owned_handle
    disable_logging()
    if isinstance(target, str):
        handle: IO[str] = open(target, "a")
        _owned_handle = handle
    else:
        handle = target
    logger = JsonLogger(handle, level=level)
    _active = logger
    return logger


def disable_logging() -> None:
    """Restore the no-op logger, closing any path we opened."""
    global _active, _owned_handle
    _active = NULL_LOGGER
    if _owned_handle is not None:
        try:
            _owned_handle.close()
        except OSError:
            pass
        _owned_handle = None


@contextmanager
def logging_to(
    target: Union[str, IO[str]], level: str = "info"
) -> Iterator[JsonLogger]:
    """``with logging_to(stream) as log:`` — scoped configuration."""
    logger = configure_logging(target, level=level)
    try:
        yield logger
    finally:
        disable_logging()
