"""Metrics registry: counters, gauges, timers and nested spans.

The registry is deliberately tiny and dependency-free so it can stay
permanently wired into the hot paths of the throughput engines.  Two
implementations share one duck-typed API:

* :class:`Metrics` — the real registry.  Counters accumulate, gauges
  keep the last value, timers aggregate durations, and spans build a
  tree of timed sections with attributes.
* :class:`NullMetrics` — the module-level no-op used whenever
  instrumentation is disabled.  Every method returns immediately (the
  span/timer objects are shared stateless singletons), so instrumented
  code pays only an attribute lookup and an empty call.

Instrumented code fetches the active registry with :func:`get_metrics`
and, on hot paths, guards non-trivial bookkeeping behind the
``enabled`` attribute::

    obs = get_metrics()
    started = time.perf_counter() if obs.enabled else 0.0
    ...                                   # the actual work
    if obs.enabled:
        obs.counter("engine.states", states)
        obs.observe("engine.execute", time.perf_counter() - started)

:func:`enable` / :func:`disable` swap the active registry;
:func:`collecting` does so for the duration of a ``with`` block.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.lockcheck import make_lock
from repro.obs.sinks import NULL_SINK, Sink

Number = Union[int, float]

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "HistogramStat",
    "Metrics",
    "NullMetrics",
    "Span",
    "TimerStat",
    "collecting",
    "disable",
    "enable",
    "get_metrics",
]

#: reservoir size per timer: enough for stable p50/p95, bounded so a
#: million observations cost the same memory as a hundred
RESERVOIR_SIZE = 128

#: histogram bucket upper bounds for latency-style observations (s)
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0,
)

#: histogram bucket upper bounds for count-style observations
#: (states explored, queue depths, ...): decades from 10 to 10^7
DEFAULT_SIZE_BUCKETS = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
)


class TimerStat:
    """Aggregated observations of one named timer.

    Besides the running count/total/min/max, a bounded reservoir
    (:data:`RESERVOIR_SIZE` samples, classic Vitter algorithm-R with a
    fixed-seed PRNG so snapshots are deterministic for a given
    observation sequence) supports mean and p50/p95/p99 estimates
    without unbounded memory.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.samples: List[float] = []
        self._rng = random.Random(0)

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimate from the reservoir."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(fraction * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def merge(self, data: Dict[str, Any]) -> None:
        """Fold a serialised stat (:meth:`to_dict`) into this one."""
        count = int(data.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(data.get("total_seconds", 0.0))
        self.min = min(self.min, float(data.get("min_seconds", 0.0)))
        self.max = max(self.max, float(data.get("max_seconds", 0.0)))
        for sample in data.get("samples", ()):
            if len(self.samples) < RESERVOIR_SIZE:
                self.samples.append(float(sample))
            else:
                slot = self._rng.randrange(self.count)
                if slot < RESERVOIR_SIZE:
                    self.samples[slot] = float(sample)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.mean,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
            "samples": list(self.samples),
        }


class HistogramStat:
    """Cumulative-bucket histogram of one named observation stream.

    ``buckets`` are the finite upper bounds (sorted ascending); an
    implicit ``+Inf`` bucket catches everything else.  ``counts`` are
    per-bucket (non-cumulative) with the overflow count last — the
    Prometheus exporter (:mod:`repro.obs.prom`) turns them into the
    cumulative ``le``-labelled series the text format requires.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def merge(self, data: Dict[str, Any]) -> bool:
        """Fold a serialised histogram in; False on a bucket mismatch."""
        if tuple(float(b) for b in data.get("buckets", ())) != self.buckets:
            return False
        counts = data.get("counts", ())
        if len(counts) != len(self.counts):
            return False
        for index, value in enumerate(counts):
            self.counts[index] += int(value)
        self.count += int(data.get("count", 0))
        self.sum += float(data.get("sum", 0.0))
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class Span:
    """One timed, attributed section; nests via the registry's stack."""

    __slots__ = ("name", "attributes", "children", "seconds", "_metrics", "_start")

    def __init__(self, name: str, metrics: "Metrics", attributes: Dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.children: List["Span"] = []
        self.seconds = 0.0
        self._metrics = metrics
        self._start = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to the span (overwrites)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._start = self._metrics._clock()
        self._metrics._push(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = self._metrics._clock() - self._start
        self._metrics._pop(self)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


class _Timer:
    """Context manager feeding one duration into a named TimerStat."""

    __slots__ = ("_metrics", "_name", "_start")

    def __init__(self, metrics: "Metrics", name: str) -> None:
        self._metrics = metrics
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._metrics._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._metrics.observe(self._name, self._metrics._clock() - self._start)


class _NullSpan:
    """Shared stateless no-op standing in for spans and timers."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullMetrics:
    """Disabled instrumentation: every operation is a no-op."""

    enabled = False

    def counter(self, name: str, value: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def histogram(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        pass

    def timer(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def merge_snapshot(
        self, snapshot: Dict[str, Any], prefix: str = ""
    ) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
            "spans": [],
        }

    def flush(self) -> None:
        pass

    def reset(self) -> None:
        pass


class Metrics:
    """The collecting registry.

    ``sink`` receives the snapshot on :meth:`flush`; ``clock`` is
    injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).

    All recording paths and the span stack take a single internal lock,
    so several worker threads may share one registry without corrupting
    snapshots.  The null registry stays lock-free.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[Sink] = None,
        clock=time.perf_counter,
    ) -> None:
        self.sink: Sink = sink if sink is not None else NULL_SINK
        self._clock = clock
        self._lock = make_lock("repro.obs.metrics.Metrics._lock")
        self._counters: Dict[str, Number] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Any] = {}  # guarded-by: _lock
        self._timers: Dict[str, TimerStat] = {}  # guarded-by: _lock
        self._histograms: Dict[str, HistogramStat] = {}  # guarded-by: _lock
        self._roots: List[Span] = []  # guarded-by: _lock
        self._stack: List[Span] = []  # guarded-by: _lock

    # -- recording -----------------------------------------------------
    def counter(self, name: str, value: Number = 1) -> None:
        """Add ``value`` (default 1) to the named counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        """Record the last-seen value of the named gauge."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Feed one duration into the named timer aggregate."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.add(seconds)

    def histogram(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Feed one value into the named histogram.

        The bucket bounds are fixed by the first call for a name
        (``buckets`` defaults to :data:`DEFAULT_LATENCY_BUCKETS`);
        later calls ignore the argument.
        """
        with self._lock:
            stat = self._histograms.get(name)
            if stat is None:
                stat = self._histograms[name] = HistogramStat(
                    buckets if buckets is not None
                    else DEFAULT_LATENCY_BUCKETS
                )
            stat.add(value)

    def timer(self, name: str) -> _Timer:
        """Context manager timing its body into :meth:`observe`."""
        return _Timer(self, name)

    def merge_snapshot(
        self, snapshot: Dict[str, Any], prefix: str = ""
    ) -> None:
        """Fold another registry's snapshot into this one.

        Counters are summed, timers merged (counts, totals, bounds and
        reservoirs), histograms added bucket-wise (mismatched bucket
        layouts are skipped), gauges last-write-wins.  ``prefix`` is
        prepended to every merged name — the sandbox harvest uses
        ``"child."`` so a child's ``state_space.states`` lands as
        ``child.state_space.states`` without colliding with the
        daemon's own series.  Spans are not merged (they are trees tied
        to the originating registry's stack); use the trace events for
        cross-process timelines.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                key = prefix + name
                self._counters[key] = self._counters.get(key, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[prefix + name] = value
            for name, data in snapshot.get("timers", {}).items():
                key = prefix + name
                stat = self._timers.get(key)
                if stat is None:
                    stat = self._timers[key] = TimerStat()
                stat.merge(data)
            for name, data in snapshot.get("histograms", {}).items():
                key = prefix + name
                hist = self._histograms.get(key)
                if hist is None:
                    bounds = data.get("buckets") or DEFAULT_LATENCY_BUCKETS
                    hist = self._histograms[key] = HistogramStat(bounds)
                hist.merge(data)

    def span(self, name: str, **attributes: Any) -> Span:
        """Context manager opening a nested, attributed span."""
        return Span(name, self, attributes)

    # -- span stack (called by Span) -----------------------------------
    def _push(self, span: Span) -> None:
        with self._lock:
            self._stack.append(span)

    def _pop(self, span: Span) -> None:
        with self._lock:
            # tolerate out-of-order exits: unwind to the matching span
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self._roots.append(span)

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of everything recorded so far.

        Open (unfinished) spans are not included.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: stat.to_dict() for name, stat in self._timers.items()
                },
                "histograms": {
                    name: stat.to_dict()
                    for name, stat in self._histograms.items()
                },
                "spans": [span.to_dict() for span in self._roots],
            }

    def flush(self) -> None:
        """Emit the current snapshot to the configured sink."""
        self.sink.emit(self.snapshot())

    def reset(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()
            self._roots.clear()
            self._stack.clear()


MetricsLike = Union[Metrics, NullMetrics]

#: the permanent no-op registry handed out while instrumentation is off
NULL_METRICS = NullMetrics()

_active: MetricsLike = NULL_METRICS


def get_metrics() -> MetricsLike:
    """The active registry (the shared :data:`NULL_METRICS` when off)."""
    return _active


def enable(metrics: Optional[Metrics] = None) -> Metrics:
    """Install ``metrics`` (or a fresh registry) as the active one."""
    global _active
    active = metrics if metrics is not None else Metrics()
    _active = active
    return active


def disable() -> MetricsLike:
    """Deactivate collection; returns the registry that was active."""
    global _active
    previous = _active
    _active = NULL_METRICS
    return previous


@contextmanager
def collecting(metrics: Optional[Metrics] = None) -> Iterator[Metrics]:
    """Enable collection for the duration of a ``with`` block."""
    active = enable(metrics)
    try:
        yield active
    finally:
        if _active is active:
            disable()
