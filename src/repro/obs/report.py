"""Schema-versioned per-run reports.

A *run report* is the machine-readable record of one instrumented run:
what was executed (``label`` + free-form ``result``), the metrics
snapshot (counters, timer aggregates, span tree), a trace digest,
budget consumption, and an environment fingerprint (python, platform,
git sha, seed) that makes perf numbers comparable across machines and
commits.  ``repro-alloc bench`` emits its ``BENCH_<label>.json`` files
in exactly this schema, and ``bench --compare`` reads them back for
regression detection (see :mod:`repro.bench`).

The envelope mirrors the checkpoint format: ``format`` is
:data:`REPORT_FORMAT`, ``version`` is :data:`REPORT_VERSION`, files are
written atomically (write-to-temp + ``os.replace``), and
:func:`read_report` refuses anything it does not understand with a
typed :class:`ReportError`.  Everything inside a report is JSON-native
(:func:`build_report` normalises ``Fraction`` and friends through
:func:`repro.obs.sinks.to_json`), so reports round-trip bit-for-bit.

Full field reference: ``docs/FORMATS.md``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

from repro.obs.sinks import to_json

REPORT_FORMAT = "repro-run-report"
REPORT_VERSION = 1

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "ReportError",
    "build_report",
    "environment_fingerprint",
    "read_report",
    "write_report",
]


class ReportError(ValueError):
    """A run report is missing, malformed or of an unknown version."""


def _git_sha() -> Optional[str]:
    """The current commit's short sha, or None outside a git work tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def environment_fingerprint(seed: Optional[int] = None) -> Dict[str, Any]:
    """Where and on what a run happened (JSON-ready).

    ``seed`` is the workload seed when the run used one; the git sha is
    best-effort (None when the code does not live in a git work tree).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
        "seed": seed,
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else None,
    }


def build_report(
    label: str,
    result: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    trace: Optional[Any] = None,
    budget: Optional[Any] = None,
    seed: Optional[int] = None,
    workloads: Optional[Any] = None,
) -> Dict[str, Any]:
    """Assemble a run report dict in the versioned schema.

    ``metrics`` is a ``Metrics.snapshot()`` dict; ``trace`` either a
    :class:`~repro.obs.trace.TraceBuffer` (its :meth:`summary` is
    embedded, never the raw events) or an already-built summary dict;
    ``budget`` a :class:`~repro.resilience.budget.Budget` (duck-typed —
    only its public fields are read); ``workloads`` the per-workload
    measurement list of a bench run.  Every value is normalised to
    JSON-native types, so the returned dict survives
    :func:`write_report` / :func:`read_report` unchanged.
    """
    report: Dict[str, Any] = {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "label": label,
        "environment": environment_fingerprint(seed=seed),
    }
    if result is not None:
        report["result"] = result
    if metrics is not None:
        report["metrics"] = metrics
    if trace is not None:
        report["trace"] = trace if isinstance(trace, dict) else trace.summary()
    if budget is not None:
        report["budget"] = {
            "deadline_seconds": budget.deadline,
            "max_states": budget.max_states,
            "max_throughput_checks": budget.max_throughput_checks,
            "states_charged": budget.states_charged,
            "checks_charged": budget.checks_charged,
            "elapsed_seconds": budget.elapsed(),
        }
    if workloads is not None:
        report["workloads"] = workloads
    # normalise non-JSON values (Fraction gauges, inf) exactly the way
    # the sinks do, so what read_report returns equals what was built
    return json.loads(to_json(report, indent=None))


def write_report(path: str, report: Dict[str, Any]) -> str:
    """Atomically persist a report as JSON; returns ``path``.

    Refuses payloads without the :data:`REPORT_FORMAT` envelope so a
    stray dict can never masquerade as a run report.
    """
    if report.get("format") != REPORT_FORMAT:
        raise ReportError(
            f"refusing to write a payload without the {REPORT_FORMAT!r} "
            "envelope"
        )
    text = json.dumps(report, indent=2, default=str)
    temp = path + ".tmp"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    return path


def read_report(path: str) -> Dict[str, Any]:
    """Load and validate a report written by :func:`write_report`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ReportError(f"cannot read run report: {error}") from error
    except json.JSONDecodeError as error:
        raise ReportError(
            f"run report {path!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict) or data.get("format") != REPORT_FORMAT:
        raise ReportError(f"{path!r} is not a repro run report")
    if data.get("version") != REPORT_VERSION:
        raise ReportError(
            f"unsupported run-report version {data.get('version')!r} "
            f"(this build reads version {REPORT_VERSION})"
        )
    return data
