"""Runtime lock sanitizer — the dynamic half of the CON0xx analysis.

Every threaded module in the repository allocates its locks through
:func:`make_lock` instead of calling :class:`threading.Lock` directly.
While the sanitizer is **off** (the default, and the only mode ordinary
runs ever see) ``make_lock`` returns a plain :class:`threading.Lock`,
so the hot paths pay nothing — the same null-by-default contract the
metrics/trace/log planes obey.

Under ``pytest -m sanitizer`` (``make test-sanitizer``) the suites wrap
service construction in :func:`lockchecking`, and ``make_lock`` hands
out :class:`CheckedLock` wrappers instead.  Each wrapper records, into
the installed :class:`LockMonitor`:

* **acquisition-order edges** — for every acquire, one ``held -> this``
  edge per lock the acquiring thread already holds.  The observed edge
  set is cross-checked against the *static* lock-order graph built by
  :func:`repro.analysis.source.lock_order_graph`, so the static
  deadlock pass (``CON004``) and dynamic reality validate each other:
  an observed edge whose reverse is statically reachable is a
  **lock-order inversion** (:meth:`LockMonitor.inversions`).
* **hold times** — wall-in-critical-section seconds per lock, flagging
  locks held across blocking work (the dynamic shadow of ``CON003``);
  :meth:`LockMonitor.long_holds` lists locks held beyond a threshold.

Lock *names* are the static analysis' node names
(``repro.service.service.AllocationService._lock``), so the two graphs
join on equal strings; ``tools/check_invariants.py`` pins every
``make_lock`` call site's name literal to its allocation site.

Counters (emitted by :meth:`LockMonitor.report` when metrics are
collecting): ``lockcheck.acquisitions``, ``lockcheck.edges``,
``lockcheck.inversions``.  See docs/ANALYSIS.md ("Concurrency rules")
for the full tool chain.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "CheckedLock",
    "LockMonitor",
    "disable_lockcheck",
    "enable_lockcheck",
    "get_monitor",
    "lockcheck_enabled",
    "lockchecking",
    "make_lock",
]


class LockMonitor:
    """Collects acquisition facts from every :class:`CheckedLock`.

    Thread-safe through one internal (plain, never instrumented) lock;
    per-thread held-lock stacks are keyed by thread id.
    """

    def __init__(self, hold_threshold: float = 0.1) -> None:
        #: seconds a lock may be held before :meth:`long_holds` lists it
        self.hold_threshold = hold_threshold
        self._lock = threading.Lock()  # guards: _held, _edges, _acquisitions, _hold_max
        self._held: Dict[int, List[str]] = {}
        self._edges: Set[Tuple[str, str]] = set()
        self._acquisitions = 0
        self._hold_max: Dict[str, float] = {}

    # -- hooks called by CheckedLock -----------------------------------
    def acquired(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._acquisitions += 1
            stack = self._held.setdefault(ident, [])
            for held in stack:
                if held != name:
                    self._edges.add((held, name))
            stack.append(name)

    def released(self, name: str, held_seconds: float) -> None:
        ident = threading.get_ident()
        with self._lock:
            stack = self._held.get(ident, [])
            # out-of-order releases are legal for plain locks: remove
            # the most recent matching acquisition, not the stack top
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == name:
                    del stack[index]
                    break
            previous = self._hold_max.get(name, 0.0)
            if held_seconds > previous:
                self._hold_max[name] = held_seconds

    # -- queries -------------------------------------------------------
    def edges(self) -> Set[Tuple[str, str]]:
        """The observed acquisition-order edges (copies)."""
        with self._lock:
            return set(self._edges)

    @property
    def acquisitions(self) -> int:
        with self._lock:
            return self._acquisitions

    def hold_max(self) -> Dict[str, float]:
        """Worst observed hold time per lock, in seconds."""
        with self._lock:
            return dict(self._hold_max)

    def long_holds(self) -> Dict[str, float]:
        """Locks whose worst hold time exceeded ``hold_threshold``."""
        return {
            name: seconds
            for name, seconds in self.hold_max().items()
            if seconds > self.hold_threshold
        }

    def inversions(
        self, static_graph: Dict[str, Set[str]]
    ) -> List[Tuple[str, str]]:
        """Observed edges contradicting the static lock-order graph.

        An observed edge ``(a, b)`` is an inversion when ``a`` is
        statically reachable from ``b`` — some other code path orders
        the same two locks the opposite way, which is the two-thread
        deadlock recipe ``CON004`` exists to prevent.  Edges between
        locks the static graph has never ordered are fine (they merely
        extend the graph).
        """
        found: List[Tuple[str, str]] = []
        for a, b in sorted(self.edges()):
            if _reachable(static_graph, b, a):
                found.append((a, b))
        return found

    def report(self) -> Dict[str, object]:
        """JSON-ready digest; also feeds the ``lockcheck.*`` counters."""
        from repro.obs.metrics import get_metrics

        edges = sorted(self.edges())
        digest = {
            "acquisitions": self.acquisitions,
            "edges": [list(edge) for edge in edges],
            "hold_max_seconds": self.hold_max(),
            "long_holds": self.long_holds(),
        }
        obs = get_metrics()
        if obs.enabled:
            obs.counter("lockcheck.acquisitions", self.acquisitions)
            obs.counter("lockcheck.edges", len(edges))
        return digest


def _reachable(
    graph: Dict[str, Set[str]], start: str, target: str
) -> bool:
    """Directed reachability ``start -> ... -> target`` (inclusive)."""
    if start == target:
        return True
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for successor in graph.get(node, ()):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


class CheckedLock:
    """A :class:`threading.Lock` wrapper feeding a :class:`LockMonitor`.

    Implements the full lock protocol (``acquire``/``release``/context
    manager/``locked``) plus the private ``_is_owned`` hook
    :class:`threading.Condition` probes, so ``Condition(CheckedLock())``
    behaves exactly like ``Condition(Lock())`` — a condition ``wait``
    releases and re-acquires through the wrapper and is therefore
    visible to the monitor too.
    """

    def __init__(self, name: str, monitor: LockMonitor) -> None:
        self.name = name
        self._monitor = monitor
        self._inner = threading.Lock()  # guards: the wrapped critical section itself
        self._owner: Optional[int] = None
        self._acquired_at = 0.0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._owner = threading.get_ident()
            self._acquired_at = time.perf_counter()
            self._monitor.acquired(self.name)
        return got

    def release(self) -> None:
        held = time.perf_counter() - self._acquired_at
        self._owner = None
        self._inner.release()
        self._monitor.released(self.name, held)

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        # threading.Condition uses this to assert wait()/notify() are
        # called with the lock held
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<CheckedLock {self.name!r} {state}>"


#: the installed monitor; ``None`` keeps :func:`make_lock` on the
#: zero-overhead plain-Lock path
_monitor: Optional[LockMonitor] = None


def make_lock(name: str) -> Any:
    """A lock named for the sanitizer; a plain Lock while it is off.

    ``name`` must be the allocation site's static node name
    (``<module>.<Class>.<attr>`` — checked by
    ``tools/check_invariants.py``) so dynamic acquisition orders join
    the static lock-order graph on equal strings.
    """
    monitor = _monitor
    if monitor is None:
        return threading.Lock()
    return CheckedLock(name, monitor)


def lockcheck_enabled() -> bool:
    return _monitor is not None


def get_monitor() -> Optional[LockMonitor]:
    """The installed monitor, ``None`` while the sanitizer is off."""
    return _monitor


def enable_lockcheck(
    monitor: Optional[LockMonitor] = None,
) -> LockMonitor:
    """Install ``monitor`` (or a fresh one); affects *future* locks.

    Only locks allocated while enabled are instrumented — enable the
    sanitizer before constructing the service under test.
    """
    global _monitor
    active = monitor if monitor is not None else LockMonitor()
    _monitor = active
    return active


def disable_lockcheck() -> Optional[LockMonitor]:
    """Uninstall the sanitizer; returns the monitor that was active."""
    global _monitor
    previous = _monitor
    _monitor = None
    return previous


@contextmanager
def lockchecking(
    monitor: Optional[LockMonitor] = None,
) -> Iterator[LockMonitor]:
    """``with lockchecking() as mon:`` — scoped sanitizer installation."""
    active = enable_lockcheck(monitor)
    try:
        yield active
    finally:
        if _monitor is active:
            disable_lockcheck()
