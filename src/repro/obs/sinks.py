"""Pluggable destinations for metrics snapshots.

A *sink* consumes the JSON-ready snapshot produced by
``Metrics.snapshot()``.  Three implementations cover the needs of the
repository:

* :class:`NullSink` — discard (the module-level default, so enabled
  registries without an explicit sink never fail on flush);
* :class:`JsonSink` — serialise to a file path or a text stream;
* :class:`SummarySink` — render the human-readable summary of
  :func:`format_summary` to a text stream.

Values that are not natively JSON-serialisable (``Fraction``,
``inf``, …) are stringified by :func:`to_json`, so instrumented code
may record exact rationals without caring about the export format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Optional, Union

__all__ = [
    "JsonSink",
    "NULL_SINK",
    "NullSink",
    "Sink",
    "SummarySink",
    "format_summary",
    "to_json",
]


class Sink:
    """Base sink: receives snapshots via :meth:`emit`."""

    def emit(self, snapshot: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError


class NullSink(Sink):
    """Discards every snapshot."""

    def emit(self, snapshot: Dict[str, Any]) -> None:
        pass


#: shared default sink of every registry without an explicit one
NULL_SINK = NullSink()


def to_json(snapshot: Dict[str, Any], indent: Optional[int] = 2) -> str:
    """Serialise a snapshot; non-JSON values become their ``str()``."""
    return json.dumps(snapshot, indent=indent, default=str)


class JsonSink(Sink):
    """Writes snapshots as JSON to a file path or an open text stream."""

    def __init__(
        self, target: Union[str, IO[str]], indent: Optional[int] = 2
    ) -> None:
        self.target = target
        self.indent = indent

    def emit(self, snapshot: Dict[str, Any]) -> None:
        payload = to_json(snapshot, indent=self.indent)
        if isinstance(self.target, str):
            with open(self.target, "w") as handle:
                handle.write(payload + "\n")
        else:
            self.target.write(payload + "\n")


def _format_span(span: Dict[str, Any], depth: int, lines: list) -> None:
    attributes = span.get("attributes", {})
    suffix = (
        "  " + " ".join(f"{k}={v}" for k, v in attributes.items())
        if attributes
        else ""
    )
    lines.append(
        f"  {'  ' * depth}{span['name']}: {span['seconds'] * 1e3:.2f} ms{suffix}"
    )
    for child in span.get("children", []):
        _format_span(child, depth + 1, lines)


def format_summary(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a snapshot (stable ordering)."""
    lines = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name}: {gauges[name]}")
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("timers:")
        for name in sorted(timers):
            stat = timers[name]
            lines.append(
                f"  {name}: {stat['count']}x "
                f"total {stat['total_seconds'] * 1e3:.2f} ms "
                f"(min {stat['min_seconds'] * 1e3:.3f}, "
                f"max {stat['max_seconds'] * 1e3:.3f})"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            stat = histograms[name]
            count = stat.get("count", 0)
            total = stat.get("sum", 0.0)
            mean = total / count if count else 0.0
            lines.append(f"  {name}: {count}x mean {mean:.4g} sum {total:.4g}")
    spans = snapshot.get("spans", [])
    if spans:
        lines.append("spans:")
        for span in spans:
            _format_span(span, 0, lines)
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


class SummarySink(Sink):
    """Writes the human-readable summary to an open text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream

    def emit(self, snapshot: Dict[str, Any]) -> None:
        self.stream.write(format_summary(snapshot) + "\n")
