"""Cross-process telemetry: sidecar spool files, clock rebasing, merge.

A sandboxed attempt runs in a child process whose metrics registry and
trace ring would otherwise die with it.  This module is the bridge:

* the child periodically calls :func:`write_telemetry` to spool its
  ``Metrics`` snapshot plus ``TraceBuffer`` contents to a per-
  (job, attempt) sidecar file next to the heartbeat file (atomic
  write-to-temp + rename, so the parent never reads a torn file);
* the parent reads it back with :func:`read_telemetry` after the child
  exits, folds the counters/timers/histograms into the daemon registry
  under the ``child.`` namespace (``Metrics.merge_snapshot``), and
  rebases the child's trace events into its own clock domain with
  :func:`rebase_events`;
* :class:`JobTelemetry` retains the rebased per-attempt segments so the
  service can answer ``/jobs/<id>/timeline`` and export one merged
  Chrome trace (:func:`merged_chrome_trace`) where the parent and each
  sandbox child occupy distinct pid lanes.

Clock rebasing: ``perf_counter`` domains are process-private, so the
sidecar carries a ``(wall, perf)`` reference pair captured together
(:func:`capture_clock`).  A child event at perf time ``t`` happened at
wall time ``child.wall + (t - child.perf)``; mapping through the
parent's own pair lands it in the parent's perf domain.  Wall-clock
skew between the two captures is bounded by NTP slew over the attempt's
lifetime — microseconds, invisible at trace resolution.

:class:`FlightRecorder` is the post-mortem hook: when a job is
quarantined or the crash-loop breaker trips, the service dumps the
current trace ring + metrics snapshot + the job's harvested segments to
``<spool>/flightrec/`` for offline inspection.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.lockcheck import make_lock
from repro.obs.metrics import MetricsLike
from repro.obs.trace import TraceBuffer, TraceEvent, NullTraceBuffer

__all__ = [
    "FlightRecorder",
    "JobTelemetry",
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
    "TelemetryError",
    "capture_clock",
    "events_from_dicts",
    "merged_chrome_trace",
    "read_telemetry",
    "rebase_events",
    "write_telemetry",
]

TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1

#: pid assigned to the parent/service lane in merged Chrome traces
PARENT_PID = 1

#: retained job histories before FIFO eviction (bounds daemon memory)
MAX_TRACKED_JOBS = 256

#: flight-recorder dump cap — a crash-looping job must not fill the disk
MAX_FLIGHT_DUMPS = 64


class TelemetryError(Exception):
    """A sidecar file is missing, torn, or from an unknown format."""


def capture_clock() -> Dict[str, float]:
    """A ``(pid, wall, perf)`` reference pair for clock rebasing.

    ``wall`` and ``perf`` are read back to back so the pair ties this
    process's private ``perf_counter`` domain to the shared wall clock.
    """
    return {
        "pid": float(os.getpid()),
        "wall": time.time(),
        "perf": time.perf_counter(),
    }


def write_telemetry(
    path: str,
    metrics: MetricsLike,
    trace: "TraceBuffer | NullTraceBuffer",
    clock: Optional[Dict[str, float]] = None,
) -> str:
    """Atomically spool a telemetry sidecar file; returns ``path``.

    Safe to call repeatedly (the heartbeat loop does): each call
    replaces the previous snapshot wholesale, so the parent always
    reads a consistent, most-recent view even if the child is later
    SIGKILLed mid-attempt.
    """
    payload = {
        "format": TELEMETRY_FORMAT,
        "version": TELEMETRY_VERSION,
        "clock": clock if clock is not None else capture_clock(),
        "metrics": metrics.snapshot(),
        "trace": {
            "dropped": trace.dropped,
            "events": [event.to_dict() for event in trace.events()],
        },
    }
    temp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, default=str))
            handle.flush()
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    return path


def read_telemetry(path: str) -> Dict[str, Any]:
    """Read and validate a sidecar written by :func:`write_telemetry`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise TelemetryError(f"no telemetry sidecar at {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"unreadable telemetry sidecar {path}: {exc}")
    if not isinstance(payload, dict):
        raise TelemetryError(f"telemetry sidecar {path} is not an object")
    if payload.get("format") != TELEMETRY_FORMAT:
        raise TelemetryError(
            f"telemetry sidecar {path} has format "
            f"{payload.get('format')!r}, expected {TELEMETRY_FORMAT!r}"
        )
    if payload.get("version") != TELEMETRY_VERSION:
        raise TelemetryError(
            f"telemetry sidecar {path} has version "
            f"{payload.get('version')!r}, expected {TELEMETRY_VERSION}"
        )
    for key in ("clock", "metrics", "trace"):
        if key not in payload:
            raise TelemetryError(f"telemetry sidecar {path} missing {key!r}")
    return payload


def events_from_dicts(records: List[Dict[str, Any]]) -> List[TraceEvent]:
    """Rehydrate serialised trace events (inverse of ``to_dict``)."""
    events: List[TraceEvent] = []
    for record in records:
        if not isinstance(record, dict):
            continue
        try:
            events.append(
                TraceEvent(
                    str(record["category"]),
                    str(record["name"]),
                    float(record["timestamp"]),
                    (
                        float(record["duration"])
                        if record.get("duration") is not None
                        else None
                    ),
                    dict(record.get("args") or {}),
                )
            )
        except (KeyError, TypeError, ValueError):
            continue
    return events


def rebase_events(
    events: List[TraceEvent],
    child_clock: Dict[str, float],
    parent_clock: Optional[Dict[str, float]] = None,
) -> List[TraceEvent]:
    """Map child perf-domain timestamps into the parent's perf domain.

    ``ts_parent = parent.perf + (child.wall - parent.wall)
    + (ts_child - child.perf)`` — route through the shared wall clock,
    then back into the parent's private monotonic domain so the rebased
    events sort correctly against the parent's own trace ring.
    """
    if parent_clock is None:
        parent_clock = capture_clock()
    offset = (
        parent_clock["perf"]
        + (child_clock["wall"] - parent_clock["wall"])
        - child_clock["perf"]
    )
    return [
        TraceEvent(
            event.category,
            event.name,
            event.timestamp + offset,
            event.duration,
            dict(event.args),
        )
        for event in events
    ]


def merged_chrome_trace(
    lanes: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Multiple event streams as one Chrome trace with pid lanes.

    Each lane is ``{"name": str, "pid": int, "events": [TraceEvent]}``.
    All timestamps must already share one clock domain (rebase child
    lanes first); the merged document rebases the earliest event across
    *all* lanes to t=0 so Perfetto opens at the interesting part.
    """
    base = min(
        (
            event.timestamp
            for lane in lanes
            for event in lane.get("events", [])
        ),
        default=0.0,
    )
    trace_events: List[Dict[str, Any]] = []
    for lane in lanes:
        pid = int(lane.get("pid", PARENT_PID))
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": str(lane.get("name", f"pid {pid}"))},
            }
        )
        for event in lane.get("events", []):
            record: Dict[str, Any] = {
                "name": event.name,
                "cat": event.category,
                "ts": round((event.timestamp - base) * 1e6, 3),
                "pid": pid,
                "tid": 1,
            }
            if event.duration is None:
                record["ph"] = "i"
                record["s"] = "t"
            else:
                record["ph"] = "X"
                record["dur"] = round(event.duration * 1e6, 3)
            if event.args:
                record["args"] = dict(event.args)
            trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


class JobTelemetry:
    """Per-job store of harvested child telemetry segments.

    Thread-safe; bounded to :data:`MAX_TRACKED_JOBS` jobs with oldest-
    first eviction so a long-running daemon's memory stays flat.  Events
    handed to :meth:`record` must already be rebased into the parent's
    clock domain.
    """

    def __init__(self, max_jobs: int = MAX_TRACKED_JOBS) -> None:
        self._lock = make_lock("repro.obs.telemetry.JobTelemetry._lock")
        self._max_jobs = max(1, max_jobs)
        # insertion-ordered: job id -> list of segment dicts
        self._jobs: Dict[str, List[Dict[str, Any]]] = {}  # guarded-by: _lock

    def record(
        self,
        job: str,
        attempt: int,
        pid: int,
        events: List[TraceEvent],
        metrics: Dict[str, Any],
    ) -> None:
        segment = {
            "job": job,
            "attempt": attempt,
            "pid": pid,
            "events": events,
            "metrics": metrics,
        }
        with self._lock:
            if job not in self._jobs and len(self._jobs) >= self._max_jobs:
                oldest = next(iter(self._jobs))
                del self._jobs[oldest]
            self._jobs.setdefault(job, []).append(segment)

    def segments(self, job: str) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._jobs.get(job, []))

    def jobs(self) -> List[str]:
        with self._lock:
            return list(self._jobs)

    def timeline(
        self, job: str, parent_events: List[TraceEvent]
    ) -> List[Dict[str, Any]]:
        """The job's merged event timeline, oldest first.

        Parent events are filtered to those whose args carry this job's
        id; child events come from every harvested attempt segment.
        """
        entries: List[Dict[str, Any]] = []
        for event in parent_events:
            if event.args.get("job") != job:
                continue
            entry = event.to_dict()
            entry["source"] = "service"
            entries.append(entry)
        for segment in self.segments(job):
            source = f"sandbox-a{segment['attempt']}"
            for event in segment["events"]:
                entry = event.to_dict()
                entry["source"] = source
                entries.append(entry)
        entries.sort(key=lambda entry: entry["timestamp"])
        return entries

    def chrome_trace(
        self,
        job: str,
        parent_events: List[TraceEvent],
        process_name: str = "repro-alloc service",
    ) -> Dict[str, Any]:
        """One Chrome trace: the service lane plus one lane per attempt."""
        lanes: List[Dict[str, Any]] = [
            {
                "name": process_name,
                "pid": PARENT_PID,
                "events": [
                    event
                    for event in parent_events
                    if event.args.get("job") == job
                ],
            }
        ]
        for segment in self.segments(job):
            pid = int(segment.get("pid") or 0)
            if pid in (0, PARENT_PID):
                # Never collide with the parent lane even if the
                # sidecar carried a degenerate pid.
                pid = PARENT_PID + 1 + segment["attempt"]
            lanes.append(
                {
                    "name": f"sandbox {job} attempt {segment['attempt']}",
                    "pid": pid,
                    "events": segment["events"],
                }
            )
        return merged_chrome_trace(lanes)


class FlightRecorder:
    """Dumps post-mortem telemetry bundles into ``<root>/flightrec/``.

    Best-effort by design: a failed dump (full disk, unlinked spool)
    must never take the quarantine path down with it, so :meth:`dump`
    returns ``None`` instead of raising.  Capped at
    :data:`MAX_FLIGHT_DUMPS` files per recorder instance.
    """

    def __init__(self, root: str, max_dumps: int = MAX_FLIGHT_DUMPS) -> None:
        self.root = root
        self._lock = make_lock("repro.obs.telemetry.FlightRecorder._lock")
        self._max_dumps = max(1, max_dumps)
        self._dumps = 0  # guarded-by: _lock

    def dump(
        self,
        job: str,
        tag: str,
        metrics: Dict[str, Any],
        events: List[TraceEvent],
        extra: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        with self._lock:
            if self._dumps >= self._max_dumps:
                return None
            self._dumps += 1
            count = self._dumps
        safe_job = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in job
        )
        safe_tag = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in tag
        )
        path = os.path.join(
            self.root, f"{safe_job}.{safe_tag}.{count:03d}.json"
        )
        payload = {
            "format": "repro-flightrec",
            "version": 1,
            "job": job,
            "tag": tag,
            "clock": capture_clock(),
            "metrics": metrics,
            "trace": [event.to_dict() for event in events],
        }
        if extra:
            payload["extra"] = extra
        temp = f"{path}.{os.getpid()}.tmp"
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, default=str))
            os.replace(temp, path)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass
            return None
        return path
