"""Bounded event-level tracing with Chrome/Perfetto export.

While :mod:`repro.obs.metrics` answers *how much* (aggregated counters
and timers), this module answers *where inside the run*: a
:class:`TraceBuffer` records structured, timestamped events — engine
phase transitions, TDMA-wheel rotations, checkpoint writes/reads,
budget exhaustion, degradation-rung transitions, certificate verdicts —
into a bounded ring buffer, and :func:`chrome_trace` exports them in
the Chrome Trace Event Format that ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ open directly.

The same null-by-default pattern as the metrics registry applies:
:func:`get_trace` returns the shared :data:`NULL_TRACE` no-op unless
tracing was switched on, so the permanently wired call sites cost one
attribute lookup plus an empty call when tracing is off (guarded by
``tests/test_performance_guards.py``).  Hot loops additionally guard
per-event bookkeeping behind the ``enabled`` attribute::

    tr = get_trace()
    started = tr.now() if tr.enabled else 0.0
    ...                                   # the actual work
    if tr.enabled:
        tr.complete("engine", "execute", started, tr.now(), states=n)

Event categories used across the repository (``docs/OBSERVABILITY.md``
has the full catalogue): ``engine``, ``tdma``, ``checkpoint``,
``resilience``, ``flow``, ``verify``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.lockcheck import make_lock

__all__ = [
    "DEFAULT_CAPACITY",
    "NULL_TRACE",
    "NullTraceBuffer",
    "TraceBuffer",
    "TraceEvent",
    "chrome_trace",
    "disable_trace",
    "enable_trace",
    "get_trace",
    "tracing",
    "write_chrome_trace",
]

#: ring-buffer size when none is given: generous for one allocation run,
#: bounded so pathological explorations cannot exhaust memory
DEFAULT_CAPACITY = 100_000


class TraceEvent:
    """One recorded event.

    ``duration`` is ``None`` for instant events and the elapsed seconds
    for complete (begin/end) events; ``timestamp`` is in the buffer
    clock's domain (:func:`time.perf_counter` seconds by default).
    """

    __slots__ = ("category", "name", "timestamp", "duration", "args")

    def __init__(
        self,
        category: str,
        name: str,
        timestamp: float,
        duration: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.category = category
        self.name = name
        self.timestamp = timestamp
        self.duration = duration
        self.args = args or {}

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "category": self.category,
            "name": self.name,
            "timestamp": self.timestamp,
        }
        if self.duration is not None:
            payload["duration"] = self.duration
        if self.args:
            payload["args"] = dict(self.args)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.category!r}, {self.name!r}, "
            f"ts={self.timestamp:.6f}, dur={self.duration})"
        )


class _TraceSpan:
    """Context manager recording one complete event on exit."""

    __slots__ = ("_buffer", "_category", "_name", "_args", "_start")

    def __init__(
        self, buffer: "TraceBuffer", category: str, name: str, args: Dict
    ) -> None:
        self._buffer = buffer
        self._category = category
        self._name = name
        self._args = args
        self._start = 0.0

    def set(self, key: str, value: Any) -> None:
        self._args[key] = value

    def __enter__(self) -> "_TraceSpan":
        self._start = self._buffer.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._buffer.complete(
            self._category,
            self._name,
            self._start,
            self._buffer.now(),
            **self._args,
        )


class _NullTraceSpan:
    """Shared stateless no-op span of the null buffer."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullTraceSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_TRACE_SPAN = _NullTraceSpan()


class NullTraceBuffer:
    """Disabled tracing: every operation is a no-op (and lock-free)."""

    enabled = False

    def now(self) -> float:
        return 0.0

    def instant(self, category: str, name: str, **args: Any) -> None:
        pass

    def complete(
        self, category: str, name: str, started: float, ended: float,
        **args: Any,
    ) -> None:
        pass

    def span(self, category: str, name: str, **args: Any) -> _NullTraceSpan:
        return _NULL_TRACE_SPAN

    def events(self) -> List[TraceEvent]:
        return []

    @property
    def dropped(self) -> int:
        return 0

    def summary(self) -> Dict[str, Any]:
        return {"events": 0, "dropped": 0, "categories": {}}

    def clear(self) -> None:
        pass


class TraceBuffer:
    """A bounded, thread-safe ring buffer of :class:`TraceEvent` records.

    ``capacity`` bounds memory: once full, the *oldest* events are
    evicted and counted in :attr:`dropped` (the tail of a run is almost
    always the interesting part).  ``clock`` is injectable for
    deterministic tests and defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock=time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = make_lock("repro.obs.trace.TraceBuffer._lock")
        self._events: deque = deque(maxlen=capacity)  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    # -- recording -----------------------------------------------------
    def now(self) -> float:
        """A reading of the buffer's clock (for ``complete`` bounds)."""
        return self._clock()

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)

    def instant(self, category: str, name: str, **args: Any) -> None:
        """Record a point-in-time event at the current clock reading."""
        self._append(TraceEvent(category, name, self._clock(), None, args))

    def complete(
        self, category: str, name: str, started: float, ended: float,
        **args: Any,
    ) -> None:
        """Record a duration event spanning ``[started, ended]``."""
        self._append(
            TraceEvent(category, name, started, max(0.0, ended - started), args)
        )

    def span(self, category: str, name: str, **args: Any) -> _TraceSpan:
        """Context manager recording its body as a complete event."""
        return _TraceSpan(self, category, name, args)

    # -- export --------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted because the ring was full."""
        with self._lock:
            return self._dropped

    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest: totals and per-category counts."""
        categories: Dict[str, int] = {}
        with self._lock:
            for event in self._events:
                categories[event.category] = (
                    categories.get(event.category, 0) + 1
                )
            return {
                "events": len(self._events),
                "dropped": self._dropped,
                "categories": categories,
            }

    def clear(self) -> None:
        """Drop every retained event and reset the eviction counter."""
        with self._lock:
            self._events.clear()
            self._dropped = 0


TraceLike = Union[TraceBuffer, NullTraceBuffer]

#: the permanent no-op buffer handed out while tracing is off
NULL_TRACE = NullTraceBuffer()

_active: TraceLike = NULL_TRACE


def get_trace() -> TraceLike:
    """The active trace buffer (the shared :data:`NULL_TRACE` when off)."""
    return _active


def enable_trace(buffer: Optional[TraceBuffer] = None) -> TraceBuffer:
    """Install ``buffer`` (or a fresh one) as the active trace buffer."""
    global _active
    active = buffer if buffer is not None else TraceBuffer()
    _active = active
    return active


def disable_trace() -> TraceLike:
    """Deactivate tracing; returns the buffer that was active."""
    global _active
    previous = _active
    _active = NULL_TRACE
    return previous


@contextmanager
def tracing(buffer: Optional[TraceBuffer] = None) -> Iterator[TraceBuffer]:
    """Enable tracing for the duration of a ``with`` block."""
    active = enable_trace(buffer)
    try:
        yield active
    finally:
        if _active is active:
            disable_trace()


# -- Chrome Trace Event Format export ---------------------------------


def chrome_trace(
    events: Union[TraceBuffer, List[TraceEvent]],
    process_name: str = "repro-alloc",
) -> Dict[str, Any]:
    """Events as a Chrome Trace Event Format document.

    The returned dict serialises to JSON that ``chrome://tracing`` and
    Perfetto load directly: complete events become phase ``"X"`` slices
    with microsecond durations, instants phase ``"i"`` marks.  Event
    timestamps are rebased so the earliest event sits at t=0.
    Categories map to Chrome's ``cat`` field, so Perfetto can filter by
    ``engine``, ``tdma``, ``checkpoint``, ``resilience``, ....
    """
    if isinstance(events, (TraceBuffer, NullTraceBuffer)):
        events = events.events()
    base = min((event.timestamp for event in events), default=0.0)
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for event in events:
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "ts": round((event.timestamp - base) * 1e6, 3),
            "pid": 1,
            "tid": 1,
        }
        if event.duration is None:
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = round(event.duration * 1e6, 3)
        if event.args:
            record["args"] = dict(event.args)
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    events: Union[TraceBuffer, List[TraceEvent]],
    process_name: str = "repro-alloc",
) -> str:
    """Atomically write :func:`chrome_trace` JSON to ``path``.

    Write-to-temp plus :func:`os.replace`, like the checkpoint writer,
    so a crash mid-write never leaves a truncated trace; non-JSON
    argument values are stringified.  Returns ``path``.
    """
    payload = json.dumps(
        chrome_trace(events, process_name=process_name), default=str
    )
    temp = path + ".tmp"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    return path
