"""Prometheus text-format exposition for metrics snapshots.

:func:`render_prometheus` turns the JSON-ready snapshot produced by
``Metrics.snapshot()`` into the Prometheus text exposition format
(version 0.0.4): counters become ``<prefix>_<name>_total`` counter
families, numeric gauges become gauge families, timers become summary
families with ``quantile`` labels taken from the bounded reservoir, and
histograms become cumulative ``_bucket{le=...}`` families.  Dots and
other characters that are invalid in Prometheus metric names are
rewritten to underscores.

The service HTTP front end serves the rendered text on ``GET
/metrics``; :func:`validate_exposition` is the machine check used by the
CI telemetry smoke step (duplicate families, duplicate samples and
malformed lines are reported, not raised), and :func:`parse_exposition`
is the small reader used by the ``repro-alloc status`` view.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

__all__ = [
    "CONTENT_TYPE",
    "parse_exposition",
    "render_prometheus",
    "sanitize_metric_name",
    "validate_exposition",
]

#: Content type of the text exposition format served on ``/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Timer quantiles exported as summary samples (key in ``to_dict()``
#: → ``quantile`` label value).
_TIMER_QUANTILES = (
    ("p50_seconds", "0.5"),
    ("p95_seconds", "0.95"),
    ("p99_seconds", "0.99"),
)

# Exposition line shapes accepted by validate_exposition().
_HELP_LINE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
_TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|summary|histogram|untyped)$"
)
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? "
    r"([0-9eE.+-]+|[+-]?Inf|NaN)$"
)
_LABELS = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map a dotted metric name onto a legal Prometheus name."""
    full = f"{prefix}.{name}" if prefix else name
    sanitized = _NAME_BAD_CHARS.sub("_", full)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def render_prometheus(snapshot: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    Counter families whose sanitized names collide (``a.b`` vs ``a_b``)
    are summed; non-numeric gauges are skipped (the exposition format
    has no string samples).  Spans are not exported — the Chrome trace
    carries that structure.
    """
    lines: List[str] = []

    counters: Dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        family = sanitize_metric_name(name, prefix) + "_total"
        counters[family] = counters.get(family, 0) + value
    for family in sorted(counters):
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(counters[family])}")

    gauges: Dict[str, float] = {}
    for name, value in snapshot.get("gauges", {}).items():
        if not _is_number(value):
            continue
        gauges[sanitize_metric_name(name, prefix)] = value
    for family in sorted(gauges):
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(gauges[family])}")

    timers = snapshot.get("timers", {})
    for name in sorted(timers):
        stat = timers[name]
        family = sanitize_metric_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {family} summary")
        for key, quantile in _TIMER_QUANTILES:
            if key in stat:
                value = _format_value(stat[key])
                lines.append(f'{family}{{quantile="{quantile}"}} {value}')
        lines.append(f"{family}_sum {_format_value(stat.get('total_seconds', 0.0))}")
        lines.append(f"{family}_count {_format_value(stat.get('count', 0))}")

    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        stat = histograms[name]
        family = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        bounds = list(stat.get("buckets", []))
        counts = list(stat.get("counts", []))
        for index, bound in enumerate(bounds):
            cumulative += counts[index] if index < len(counts) else 0
            value = _format_value(cumulative)
            lines.append(f'{family}_bucket{{le="{_format_value(bound)}"}} {value}')
        total = stat.get("count", 0)
        lines.append(f'{family}_bucket{{le="+Inf"}} {_format_value(total)}')
        lines.append(f"{family}_sum {_format_value(stat.get('sum', 0.0))}")
        lines.append(f"{family}_count {_format_value(total)}")

    return "\n".join(lines) + "\n" if lines else ""


def _family_of(sample_name: str) -> str:
    """Strip summary/histogram suffixes to recover the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_exposition(text: str) -> List[str]:
    """Check exposition text; return a list of problems (empty = OK).

    Flags malformed lines, duplicate ``# TYPE`` declarations, duplicate
    samples (same name and label set), and families whose samples are
    interleaved with another family's (the format requires all samples
    of one family to be consecutive).
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    seen_samples: Dict[Tuple[str, str], int] = {}
    closed_families: set = set()
    current_family = ""
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            type_match = _TYPE_LINE.match(line)
            if type_match:
                family = type_match.group(1)
                if family in typed:
                    problems.append(
                        f"line {number}: duplicate TYPE for family {family}"
                    )
                typed[family] = type_match.group(2)
                continue
            if _HELP_LINE.match(line) or line.startswith("# "):
                continue
            problems.append(f"line {number}: malformed comment: {line!r}")
            continue
        sample = _SAMPLE_LINE.match(line)
        if not sample:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        name, labels = sample.group(1), sample.group(2) or ""
        try:
            float(sample.group(3))
        except ValueError:
            if sample.group(3) not in ("+Inf", "-Inf", "NaN"):
                problems.append(
                    f"line {number}: bad sample value {sample.group(3)!r}"
                )
        key = (name, labels)
        if key in seen_samples:
            problems.append(
                f"line {number}: duplicate sample {name}{labels} "
                f"(first at line {seen_samples[key]})"
            )
        else:
            seen_samples[key] = number
        family = _family_of(name)
        if family != current_family:
            if family in closed_families:
                problems.append(
                    f"line {number}: family {family} has non-consecutive samples"
                )
            if current_family:
                closed_families.add(current_family)
            current_family = family
    return problems


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{"name{labels}": value}``.

    Comment lines are skipped and malformed lines ignored — this is the
    forgiving reader behind ``repro-alloc status``, not a validator
    (use :func:`validate_exposition` for that).
    """
    samples: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            continue
        name, labels, value = match.group(1), match.group(2) or "", match.group(3)
        try:
            samples[name + labels] = float(value)
        except ValueError:
            continue
    return samples
