"""``repro.obs`` — zero-dependency observability for the engines.

The throughput engines, MCR oracles and the allocation strategy are
permanently instrumented against this package.  Collection is off by
default: :func:`get_metrics` then returns the shared
:data:`NULL_METRICS` no-op, whose cost is one attribute lookup plus an
empty call (guarded by ``tests/test_performance_guards.py`` to stay
under 5% of engine run time).

Typical use::

    from repro.obs import collecting
    from repro.obs.sinks import format_summary

    with collecting() as metrics:
        result = throughput(graph)
    print(format_summary(metrics.snapshot()))

See ``docs/OBSERVABILITY.md`` for the metric names and the snapshot
schema.
"""

from repro.obs.metrics import (
    Metrics,
    MetricsLike,
    NULL_METRICS,
    NullMetrics,
    Span,
    TimerStat,
    collecting,
    disable,
    enable,
    get_metrics,
)
from repro.obs.sinks import (
    JsonSink,
    NULL_SINK,
    NullSink,
    Sink,
    SummarySink,
    format_summary,
    to_json,
)

__all__ = [
    "JsonSink",
    "Metrics",
    "MetricsLike",
    "NULL_METRICS",
    "NULL_SINK",
    "NullMetrics",
    "NullSink",
    "Sink",
    "Span",
    "SummarySink",
    "TimerStat",
    "collecting",
    "disable",
    "enable",
    "format_summary",
    "get_metrics",
    "to_json",
]
