"""``repro.obs`` — zero-dependency observability for the engines.

The throughput engines, MCR oracles and the allocation strategy are
permanently instrumented against this package.  Collection is off by
default: :func:`get_metrics` then returns the shared
:data:`NULL_METRICS` no-op, whose cost is one attribute lookup plus an
empty call (guarded by ``tests/test_performance_guards.py`` to stay
under 5% of engine run time).  Event-level tracing
(:mod:`repro.obs.trace`) and the run-report schema
(:mod:`repro.obs.report`) follow the same null-by-default pattern.

Typical use::

    from repro.obs import collecting, tracing, write_chrome_trace

    with collecting() as metrics, tracing() as trace:
        result = throughput(graph)
    print(format_summary(metrics.snapshot()))
    write_chrome_trace("trace.json", trace)   # open in Perfetto

See ``docs/OBSERVABILITY.md`` for the metric names, the trace-event
catalogue and the snapshot/report schemas.
"""

from repro.obs.log import (
    JsonLogger,
    NULL_LOGGER,
    NullLogger,
    configure_logging,
    disable_logging,
    get_logger,
    logging_to,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    HistogramStat,
    Metrics,
    MetricsLike,
    NULL_METRICS,
    NullMetrics,
    Span,
    TimerStat,
    collecting,
    disable,
    enable,
    get_metrics,
)
from repro.obs.prom import (
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from repro.obs.report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    ReportError,
    build_report,
    environment_fingerprint,
    read_report,
    write_report,
)
from repro.obs.sinks import (
    JsonSink,
    NULL_SINK,
    NullSink,
    Sink,
    SummarySink,
    format_summary,
    to_json,
)
from repro.obs.telemetry import (
    FlightRecorder,
    JobTelemetry,
    TelemetryError,
    capture_clock,
    merged_chrome_trace,
    read_telemetry,
    rebase_events,
    write_telemetry,
)
from repro.obs.trace import (
    NULL_TRACE,
    NullTraceBuffer,
    TraceBuffer,
    TraceEvent,
    chrome_trace,
    disable_trace,
    enable_trace,
    get_trace,
    tracing,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "FlightRecorder",
    "HistogramStat",
    "JobTelemetry",
    "JsonLogger",
    "JsonSink",
    "Metrics",
    "MetricsLike",
    "NULL_LOGGER",
    "NULL_METRICS",
    "NULL_SINK",
    "NULL_TRACE",
    "NullLogger",
    "NullMetrics",
    "NullSink",
    "NullTraceBuffer",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "ReportError",
    "Sink",
    "Span",
    "SummarySink",
    "TelemetryError",
    "TimerStat",
    "TraceBuffer",
    "TraceEvent",
    "build_report",
    "capture_clock",
    "chrome_trace",
    "collecting",
    "configure_logging",
    "disable",
    "disable_logging",
    "disable_trace",
    "enable",
    "enable_trace",
    "environment_fingerprint",
    "format_summary",
    "get_logger",
    "get_metrics",
    "get_trace",
    "logging_to",
    "merged_chrome_trace",
    "parse_exposition",
    "read_report",
    "read_telemetry",
    "rebase_events",
    "render_prometheus",
    "to_json",
    "tracing",
    "validate_exposition",
    "write_chrome_trace",
    "write_report",
    "write_telemetry",
]
