"""Self-timed state-space throughput analysis (paper ref [10]).

An actor fires as soon as sufficient tokens are present on all inputs;
tokens are consumed at the start of a firing and produced at its end,
``tau`` time units later.  The state of the execution is the token
distribution plus the remaining execution times of all active firings.
Because a consistent, strongly connected SDFG visits only finitely many
states under self-timed execution, the execution eventually revisits a
state; the throughput of every actor is its firing count over the
duration of that periodic phase.

Graphs that are not strongly connected have unbounded channels under
self-timed execution, so the driver :func:`throughput` decomposes the
graph into strongly connected components, analyses each in isolation and
combines them: the iteration rate of the graph is the minimum over the
components (upstream components throttle downstream ones; this is exact
for self-timed executions with unbounded inter-component buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import fault_point
from repro.sdf.analysis import strongly_connected_components
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.serialization import graph_to_dict

Rate = Union[Fraction, float]

#: Default cap on explored states before the engine gives up.
DEFAULT_MAX_STATES = 2_000_000
#: Cap on zero-duration firing completions at a single time instant.
_ZERO_TIME_GUARD = 1_000_000


class StateSpaceExplosionError(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""


def _state_key_to_jsonable(key: Tuple) -> List:
    """One hashed exploration state as JSON-serialisable nested lists."""
    tokens, active = key
    return [list(tokens), [[i, list(remaining)] for i, remaining in active]]


def _state_key_from_jsonable(data: Sequence) -> Tuple:
    """Inverse of :func:`_state_key_to_jsonable`."""
    tokens, active = data
    return (
        tuple(tokens),
        tuple((i, tuple(remaining)) for i, remaining in active),
    )


def rate_to_str(rate: Rate) -> str:
    """A rate as an exact, JSON-safe string (``"p/q"``, ``"inf"``)."""
    if rate == float("inf"):
        return "inf"
    return str(Fraction(rate))


def rate_from_str(text: str) -> Rate:
    """Inverse of :func:`rate_to_str`."""
    if text == "inf":
        return float("inf")
    return Fraction(text)


@dataclass
class ExecutionResult:
    """Outcome of one self-timed execution until recurrence (or deadlock).

    ``period`` is the duration of the periodic phase, ``period_firings``
    maps each actor to its number of completed firings inside one period.
    ``deadlocked`` executions have ``period = None``.
    """

    transient_time: int
    period: Optional[int]
    period_firings: Dict[str, int]
    states_explored: int
    deadlocked: bool = False
    #: compact, independently replayable evidence of the periodic phase
    #: (see ``docs/VERIFICATION.md``); None for deadlocked executions
    certificate: Optional[Dict[str, Any]] = None

    def actor_throughput(self, actor: str) -> Fraction:
        """Firings of ``actor`` per time unit in the steady state."""
        if self.deadlocked or not self.period:
            return Fraction(0)
        return Fraction(self.period_firings.get(actor, 0), self.period)


@dataclass
class ThroughputResult:
    """Throughput of a full graph (possibly several SCCs).

    ``iteration_rate`` is the number of complete graph iterations per
    time unit (``float('inf')`` when nothing constrains the rate, i.e.
    the graph has no cycle; ``0`` when the graph deadlocks).
    """

    iteration_rate: Rate
    gamma: Dict[str, int]
    scc_rates: Dict[Tuple[str, ...], Rate] = field(default_factory=dict)
    states_explored: int = 0
    #: per-SCC periodic-phase certificates (see ``docs/VERIFICATION.md``)
    certificates: Dict[Tuple[str, ...], Dict[str, Any]] = field(
        default_factory=dict
    )

    def of(self, actor: str) -> Rate:
        """Steady-state firings per time unit of ``actor``.

        Actors absent from ``gamma`` (e.g. queried against the wrong
        graph) are reported as rate 0 instead of raising ``KeyError``.
        """
        if actor not in self.gamma:
            return Fraction(0)
        if self.iteration_rate == float("inf"):
            return float("inf")
        return self.iteration_rate * self.gamma[actor]

    @property
    def deadlocked(self) -> bool:
        return self.iteration_rate == 0


class SelfTimedExecution:
    """Executable self-timed semantics of one (sub-)graph.

    The engine assumes the graph's channels stay bounded (callers pass
    strongly connected graphs or graphs with explicit buffer back-edges,
    like binding-aware graphs).  ``auto_concurrency=False`` adds an
    implicit one-firing-at-a-time restriction per actor, equivalent to a
    self-edge with one initial token.
    """

    def __init__(
        self,
        graph: SDFGraph,
        execution_times: Optional[Dict[str, int]] = None,
        auto_concurrency: bool = True,
        max_states: int = DEFAULT_MAX_STATES,
        budget: Optional[Budget] = None,
    ) -> None:
        self.graph = graph
        self.auto_concurrency = auto_concurrency
        self.max_states = max_states
        self.budget = budget
        #: firing starts observed so far (the zero-time guard counter,
        #: accumulated across phases; exported when metrics are enabled)
        self.firing_starts = 0
        times = execution_times or graph.execution_times()
        self._actor_names = graph.actor_names
        self._actor_index = {a: i for i, a in enumerate(self._actor_names)}
        self._times = [times[a] for a in self._actor_names]
        channel_names = graph.channel_names
        self._channel_names = channel_names
        channel_index = {c: i for i, c in enumerate(channel_names)}
        self._initial_tokens = [graph.channel(c).tokens for c in channel_names]
        # per actor: [(channel index, rate), ...]
        self._inputs: List[List[Tuple[int, int]]] = []
        self._outputs: List[List[Tuple[int, int]]] = []
        for actor in self._actor_names:
            self._inputs.append(
                [
                    (channel_index[c.name], c.consumption)
                    for c in graph.in_channels(actor)
                ]
            )
            self._outputs.append(
                [
                    (channel_index[c.name], c.production)
                    for c in graph.out_channels(actor)
                ]
            )

    # ------------------------------------------------------------------
    def _try_start(
        self,
        actor: int,
        tokens: List[int],
        active: List[List[int]],
        completed: List[int],
    ) -> bool:
        """Start one firing of ``actor`` if enabled; returns success."""
        if not self.auto_concurrency and active[actor]:
            return False
        for channel, rate in self._inputs[actor]:
            if tokens[channel] < rate:
                return False
        for channel, rate in self._inputs[actor]:
            tokens[channel] -= rate
        duration = self._times[actor]
        if duration == 0:
            for channel, rate in self._outputs[actor]:
                tokens[channel] += rate
            completed[actor] += 1
        else:
            active[actor].append(duration)
        return True

    def _start_phase(
        self,
        tokens: List[int],
        active: List[List[int]],
        completed: List[int],
    ) -> None:
        """Start every enabled firing (zero-time firings loop in place)."""
        guard = 0
        progress = True
        while progress:
            progress = False
            for actor in range(len(self._actor_names)):
                while self._try_start(actor, tokens, active, completed):
                    progress = True
                    guard += 1
                    if guard > _ZERO_TIME_GUARD:
                        get_metrics().counter("state_space.zero_time_guard_hits")
                        raise StateSpaceExplosionError(
                            "unbounded firing burst at one time instant: "
                            "either a cycle with total execution time 0, or "
                            "an actor without inputs under auto-concurrency "
                            "(bound the graph or disable auto_concurrency)"
                        )
            # A second sweep is only needed when zero-time firings
            # produced tokens; firing starts alone never enable others.
            if not any(self._times[a] == 0 for a in range(len(self._times))):
                break
        self.firing_starts += guard

    def _record(self, result: ExecutionResult, started: float) -> None:
        """Export one execution's statistics (metrics enabled only)."""
        obs = get_metrics()
        obs.counter("state_space.executions")
        obs.counter("state_space.states", result.states_explored)
        obs.counter("state_space.firing_starts", self.firing_starts)
        obs.gauge("state_space.hash_set_size", result.states_explored)
        obs.gauge("state_space.transient_time", result.transient_time)
        obs.gauge("state_space.period", result.period or 0)
        if result.deadlocked:
            obs.counter("state_space.deadlocks")
        obs.observe("state_space.execute", perf_counter() - started)

    def execute_until(
        self, actor: str, firings: int
    ) -> Optional[int]:
        """Time at which ``actor`` completes its ``firings``-th firing.

        Runs the same self-timed semantics as :meth:`execute` but stops
        as soon as the target completion count is reached (used by the
        latency analysis).  Returns None when the graph deadlocks
        first.
        """
        get_metrics().counter("state_space.execute_until_calls")
        fault_point("state_space.execute", graph=self.graph.name)
        budget = self.budget
        if budget is not None:
            budget.checkpoint()
        target = self._actor_index[actor]
        tokens = list(self._initial_tokens)
        active: List[List[int]] = [[] for _ in self._actor_names]
        completed = [0] * len(self._actor_names)
        time = 0
        steps = 0
        while completed[target] < firings:
            if budget is not None:
                try:
                    budget.tick()
                except BudgetExceededError as error:
                    error.partial.setdefault("graph", self.graph.name)
                    error.partial.setdefault("events", steps)
                    raise
            self._start_phase(tokens, active, completed)
            if completed[target] >= firings:
                break
            remaining_values = [r for firing in active for r in firing]
            if not remaining_values:
                return None  # deadlock before the target count
            step = min(remaining_values)
            time += step
            for index, firing in enumerate(active):
                finished = 0
                for i in range(len(firing)):
                    firing[i] -= step
                    if firing[i] == 0:
                        finished += 1
                if finished:
                    active[index] = [r for r in firing if r > 0]
                    for channel, rate in self._outputs[index]:
                        tokens[channel] += rate * finished
                    completed[index] += finished
            steps += 1
            if steps > self.max_states:
                raise StateSpaceExplosionError(
                    f"execute_until exceeded {self.max_states} events"
                )
        return time

    def _snapshot(
        self,
        time: int,
        tokens: List[int],
        active: List[List[int]],
        completed: List[int],
        seen: Dict[Tuple, Tuple[int, Tuple[int, ...]]],
    ) -> Dict[str, Any]:
        """The full exploration frontier as a JSON-serialisable dict.

        Restoring it via ``execute(resume=...)`` continues the run
        bit-identically (same recurrent state, period and state count).
        """
        return {
            "time": time,
            "tokens": list(tokens),
            "active": [list(firing) for firing in active],
            "completed": list(completed),
            "firing_starts": self.firing_starts,
            "seen": [
                [_state_key_to_jsonable(key), [when, list(counts)]]
                for key, (when, counts) in seen.items()
            ],
        }

    def execute(
        self, resume: Optional[Dict[str, Any]] = None
    ) -> ExecutionResult:
        """Run until a recurrent state (or deadlock) and report the period.

        ``resume`` restores a frontier previously captured on
        :class:`BudgetExceededError` (``error.partial["engine_state"]``)
        and continues the interrupted exploration bit-identically.
        """
        obs = get_metrics()
        tr = get_trace()
        fault_point("state_space.execute", graph=self.graph.name)
        started = perf_counter() if obs.enabled else 0.0
        trace_started = tr.now() if tr.enabled else 0.0
        budget = self.budget
        if budget is not None:
            budget.checkpoint()
        if resume is None:
            tokens = list(self._initial_tokens)
            active: List[List[int]] = [[] for _ in self._actor_names]
            completed = [0] * len(self._actor_names)
            time = 0
            seen: Dict[Tuple, Tuple[int, Tuple[int, ...]]] = {}
        else:
            tokens = list(resume["tokens"])
            active = [list(firing) for firing in resume["active"]]
            completed = list(resume["completed"])
            time = resume["time"]
            self.firing_starts = resume["firing_starts"]
            seen = {
                _state_key_from_jsonable(key): (when, tuple(counts))
                for key, (when, counts) in resume["seen"]
            }

        while True:
            if budget is not None:
                try:
                    budget.tick()
                except BudgetExceededError as error:
                    error.partial.setdefault("graph", self.graph.name)
                    error.partial.setdefault("states_explored", len(seen))
                    error.partial["engine_state"] = self._snapshot(
                        time, tokens, active, completed, seen
                    )
                    raise
            self._start_phase(tokens, active, completed)
            key = (
                tuple(tokens),
                tuple(
                    (i, tuple(sorted(remaining)))
                    for i, remaining in enumerate(active)
                    if remaining
                ),
            )
            if key in seen:
                first_time, first_completed = seen[key]
                period = time - first_time
                firings = {
                    name: completed[i] - first_completed[i]
                    for i, name in enumerate(self._actor_names)
                }
                result = ExecutionResult(
                    transient_time=first_time,
                    period=period,
                    period_firings=firings,
                    states_explored=len(seen),
                    certificate={
                        "format": "repro-certificate",
                        "version": 1,
                        "kind": "self-timed",
                        "graph": self.graph.name,
                        "actors": list(self._actor_names),
                        "channels": list(self._channel_names),
                        "execution_times": list(self._times),
                        "auto_concurrency": self.auto_concurrency,
                        "window_start": time,
                        "period": period,
                        "firings": dict(firings),
                        "tokens": list(tokens),
                        "active": [sorted(firing) for firing in active],
                    },
                )
                if obs.enabled:
                    self._record(result, started)
                if tr.enabled:
                    tr.complete(
                        "engine",
                        "state_space.execute",
                        trace_started,
                        tr.now(),
                        graph=self.graph.name,
                        states=len(seen),
                        period=period,
                        transient_time=first_time,
                    )
                return result
            seen[key] = (time, tuple(completed))
            if len(seen) > self.max_states:
                raise StateSpaceExplosionError(
                    f"exceeded {self.max_states} states on graph "
                    f"{self.graph.name!r} (channels unbounded or budget "
                    "too small)"
                )

            remaining_values = [r for firing in active for r in firing]
            if not remaining_values:
                result = ExecutionResult(
                    transient_time=time,
                    period=None,
                    period_firings={},
                    states_explored=len(seen),
                    deadlocked=True,
                )
                if obs.enabled:
                    self._record(result, started)
                if tr.enabled:
                    tr.complete(
                        "engine",
                        "state_space.execute",
                        trace_started,
                        tr.now(),
                        graph=self.graph.name,
                        states=len(seen),
                        deadlocked=True,
                    )
                return result
            step = min(remaining_values)
            time += step
            for actor, firing in enumerate(active):
                finished = 0
                for index in range(len(firing)):
                    firing[index] -= step
                    if firing[index] == 0:
                        finished += 1
                if finished:
                    active[actor] = [r for r in firing if r > 0]
                    for channel, rate in self._outputs[actor]:
                        tokens[channel] += rate * finished
                    completed[actor] += finished


def _scc_subgraph_with_cycles(
    graph: SDFGraph, component: Sequence[str]
) -> Optional[SDFGraph]:
    """Induced sub-graph when the component contains a cycle, else None."""
    if len(component) > 1:
        return graph.subgraph(component)
    actor = component[0]
    if any(c.is_self_loop for c in graph.out_channels(actor)):
        return graph.subgraph(component)
    return None


def throughput(
    graph: SDFGraph,
    execution_times: Optional[Dict[str, int]] = None,
    auto_concurrency: bool = True,
    max_states: int = DEFAULT_MAX_STATES,
    budget: Optional[Budget] = None,
    resume: Optional[Dict[str, Any]] = None,
) -> ThroughputResult:
    """Self-timed throughput of ``graph`` via SCC-wise state-space analysis.

    Returns a :class:`ThroughputResult`; ``result.of(actor)`` is the
    steady-state firing rate of an actor.  Graphs without any cycle are
    reported as unbounded (``float('inf')``); a deadlocking component
    makes the whole graph rate 0.  A :class:`Budget` bounds the
    exploration cooperatively (states charged across all components).

    When the budget fires the raised :class:`BudgetExceededError`
    carries ``error.partial["checkpoint"]``: a versioned, JSON-ready
    payload with the finished components' rates and the interrupted
    engine's frontier.  Passing that payload back as ``resume``
    (normally via
    :func:`repro.resilience.checkpoint.resume_from_checkpoint`)
    continues the analysis bit-identically.
    """
    obs = get_metrics()
    tr = get_trace()
    trace_started = tr.now() if tr.enabled else 0.0
    with obs.span("state_space.throughput", graph=graph.name) as span:
        result = _throughput_body(
            graph, execution_times, auto_concurrency, max_states, budget,
            obs, span, resume,
        )
    if tr.enabled:
        tr.complete(
            "engine",
            "state_space.throughput",
            trace_started,
            tr.now(),
            graph=graph.name,
            states=result.states_explored,
            iteration_rate=str(result.iteration_rate),
        )
    return result


def _throughput_body(
    graph: SDFGraph,
    execution_times: Optional[Dict[str, int]],
    auto_concurrency: bool,
    max_states: int,
    budget: Optional[Budget],
    obs,
    span,
    resume: Optional[Dict[str, Any]] = None,
) -> ThroughputResult:
    gamma = repetition_vector(graph)
    rates: Dict[Tuple[str, ...], Rate] = {}
    certificates: Dict[Tuple[str, ...], Dict[str, Any]] = {}
    states = 0
    overall: Rate = float("inf")
    components = strongly_connected_components(graph)
    resume_index = -1
    engine_resume = None
    restored: Dict[Tuple[str, ...], Tuple[Rate, Optional[Dict[str, Any]]]] = {}
    if resume is not None:
        resume_index = resume["component_index"]
        if not 0 <= resume_index < len(components):
            raise ValueError(
                "checkpoint does not match the graph: component index "
                f"{resume_index} outside [0, {len(components)})"
            )
        states = resume["states"]
        for entry in resume["scc_rates"]:
            restored[tuple(entry[0])] = (
                rate_from_str(entry[1]),
                entry[2] if len(entry) > 2 else None,
            )
        engine_resume = resume.get("engine_state")
        get_metrics().counter("checkpoint.components_skipped", resume_index)
    for index, component in enumerate(components):
        key = tuple(component)
        if index < resume_index:
            # finished before the checkpoint: restore instead of re-running
            if key in restored:
                rate, certificate = restored[key]
                rates[key] = rate
                if certificate is not None:
                    certificates[key] = certificate
                if rate < overall:
                    overall = rate
            continue
        subgraph = _scc_subgraph_with_cycles(graph, component)
        if subgraph is None:
            if not auto_concurrency:
                # One firing at a time acts like a self-edge with one
                # token: the actor alone limits the rate to 1/tau.
                actor = component[0]
                times = execution_times or {}
                duration = times.get(actor, graph.actor(actor).execution_time)
                if duration > 0:
                    rate = Fraction(1, duration * gamma[actor])
                    rates[key] = rate
                    if rate < overall:
                        overall = rate
            continue
        engine = SelfTimedExecution(
            subgraph,
            execution_times=(
                {a: execution_times[a] for a in component}
                if execution_times
                else None
            ),
            auto_concurrency=auto_concurrency,
            max_states=max_states,
            budget=budget,
        )
        try:
            result = engine.execute(
                resume=engine_resume if index == resume_index else None
            )
        except BudgetExceededError as error:
            error.partial["checkpoint"] = {
                "format": "repro-checkpoint",
                "version": 1,
                "kind": "state-space",
                "graph": graph_to_dict(graph),
                "execution_times": execution_times,
                "auto_concurrency": auto_concurrency,
                "max_states": max_states,
                "component_index": index,
                "scc_rates": [
                    [
                        list(done),
                        rate_to_str(rate),
                        certificates.get(done),
                    ]
                    for done, rate in rates.items()
                ],
                "states": states,
                "engine_state": error.partial.get("engine_state"),
                "budget": {
                    "states_charged": budget.states_charged,
                    "checks_charged": budget.checks_charged,
                    "elapsed": budget.elapsed(),
                }
                if budget is not None
                else None,
            }
            raise
        states += result.states_explored
        representative = component[0]
        rate: Rate
        if result.deadlocked:
            rate = Fraction(0)
        else:
            rate = result.actor_throughput(representative) / gamma[representative]
        rates[key] = rate
        if result.certificate is not None:
            certificates[key] = result.certificate
        if rate < overall:
            overall = rate
    if obs.enabled:
        obs.counter("state_space.throughput_calls")
        span.set("sccs", len(components))
        span.set("sccs_explored", len(rates))
        span.set("states", states)
        span.set("iteration_rate", str(overall))
    return ThroughputResult(
        iteration_rate=overall,
        gamma=gamma,
        scc_rates=rates,
        states_explored=states,
        certificates=certificates,
    )
