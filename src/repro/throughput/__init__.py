"""Throughput analysis engines.

Three ways to compute SDFG throughput live here:

* :mod:`repro.throughput.state_space` — self-timed state-space
  exploration directly on the SDFG (the paper's ref [10], Ghamarian et
  al. ACSD'06).  This is the engine the resource-allocation strategy
  builds on.
* :mod:`repro.throughput.constrained` — the paper's Section 8.2: the
  same exploration, but constrained by per-tile static-order schedules
  and TDMA time wheels (neither is modelled in the graph itself).
* :mod:`repro.throughput.mcr` — classical maximum-cycle-ratio analysis
  on the HSDFG, i.e. what pre-existing flows have to do after the
  exponential SDF->HSDF conversion; kept as the comparison baseline and
  as an oracle for testing the state-space engine.
"""

from repro.throughput.state_space import (
    ExecutionResult,
    SelfTimedExecution,
    ThroughputResult,
    throughput,
)
from repro.throughput.constrained import (
    ConstrainedThroughputResult,
    TileConstraints,
    constrained_throughput,
)
from repro.throughput.mcr import (
    max_cycle_ratio_exact,
    max_cycle_ratio_numeric,
    hsdf_iteration_rate,
)
from repro.throughput.howard import howard_max_cycle_ratio
from repro.throughput.reference import reference_throughput

__all__ = [
    "ExecutionResult",
    "SelfTimedExecution",
    "ThroughputResult",
    "throughput",
    "ConstrainedThroughputResult",
    "TileConstraints",
    "constrained_throughput",
    "max_cycle_ratio_exact",
    "max_cycle_ratio_numeric",
    "howard_max_cycle_ratio",
    "hsdf_iteration_rate",
    "reference_throughput",
]
