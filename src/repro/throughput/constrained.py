"""Schedule- and TDMA-constrained state-space throughput (paper §8.2).

The binding-aware SDFG models the binding decisions, but the scheduling
function (per-tile static-order schedules and TDMA slice allocations) is
deliberately *not* modelled in the graph.  Instead it constrains the
self-timed execution:

* an actor bound to a tile may only start firing when (i) it has enough
  input tokens, (ii) it is the actor at the current position of the
  tile's static-order schedule, and (iii) no other firing is active on
  the tile (one processor executes one actor at a time);
* the remaining execution time of a firing bound to a tile decreases
  only while the TDMA wheel of that tile is inside the slice reserved
  for the application.

All wheels are assumed aligned and the application slice occupies the
start of every wheel rotation; the *s* actors of the binding-aware graph
make the analysis conservative with respect to any actual alignment
(paper §8.1).  Auxiliary actors that are not bound to a tile (the
connection actors *c* and alignment actors *s*) execute unconstrained.

The engine advances event-to-event: slice gating is evaluated in closed
form (:func:`busy_time` / :func:`gated_finish`), never tick-by-tick, so
large time wheels cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import fault_point
from repro.sdf.graph import SDFGraph
from repro.sdf.serialization import graph_to_dict
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    StateSpaceExplosionError,
)


def _ckey_to_jsonable(key: Tuple) -> List:
    """One hashed constrained-execution state as JSON-ready nested lists."""
    tokens, unscheduled, tile_active, positions, phases = key
    return [
        list(tokens),
        [[i, list(remaining)] for i, remaining in unscheduled],
        [list(firing) if firing is not None else None for firing in tile_active],
        list(positions),
        list(phases),
    ]


def _ckey_from_jsonable(data: Sequence) -> Tuple:
    """Inverse of :func:`_ckey_to_jsonable`."""
    tokens, unscheduled, tile_active, positions, phases = data
    return (
        tuple(tokens),
        tuple((i, tuple(remaining)) for i, remaining in unscheduled),
        tuple(
            tuple(firing) if firing is not None else None
            for firing in tile_active
        ),
        tuple(positions),
        tuple(phases),
    )


def busy_time(
    start: int, end: int, wheel: int, slice_size: int, slice_start: int = 0
) -> int:
    """Time units in ``[start, end)`` inside the application's slice.

    The slice occupies ``[k*wheel + slice_start, k*wheel + slice_start +
    slice_size)`` for every rotation ``k`` (``slice_start = 0`` is the
    paper's aligned-wheels assumption; non-zero offsets place several
    applications in disjoint windows of the same wheel).
    """
    if slice_size >= wheel:
        return end - start

    def busy_until(t: int) -> int:
        rotations, position = divmod(t - slice_start, wheel)
        return rotations * slice_size + min(position, slice_size)

    return busy_until(end) - busy_until(start)


def gated_finish(
    start: int,
    work: int,
    wheel: int,
    slice_size: int,
    slice_start: int = 0,
) -> Optional[int]:
    """Earliest instant >= ``start`` by which ``work`` busy units elapse.

    Returns None when ``slice_size`` is 0 (the firing can never finish).
    """
    if work <= 0:
        return start
    if slice_size >= wheel:
        return start + work
    if slice_size == 0:
        return None
    position = (start - slice_start) % wheel
    remaining = work
    if position < slice_size:
        available = slice_size - position
        if remaining <= available:
            return start + remaining
        remaining -= available
        base = start + (wheel - position)
    else:
        base = start + (wheel - position)
    full_rotations = (remaining - 1) // slice_size
    leftover = remaining - full_rotations * slice_size
    return base + full_rotations * wheel + leftover


@dataclass(frozen=True)
class StaticOrderSchedule:
    """A practical static-order schedule: transient prefix + repeated part.

    Represents the infinite firing sequence
    ``transient[0] ... transient[-1] (periodic[0] ... periodic[-1])*``.
    """

    periodic: Tuple[str, ...]
    transient: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.periodic:
            raise ValueError("periodic part of a static-order schedule is empty")

    def entry(self, position: int) -> str:
        """Actor at ``position`` of the infinite schedule."""
        if position < len(self.transient):
            return self.transient[position]
        return self.periodic[(position - len(self.transient)) % len(self.periodic)]

    def canonical_position(self, position: int) -> int:
        """Position folded into the finite transient+periodic representation."""
        if position < len(self.transient):
            return position
        offset = (position - len(self.transient)) % len(self.periodic)
        return len(self.transient) + offset

    @property
    def actors(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for name in self.transient + self.periodic:
            seen.setdefault(name)
        return tuple(seen)


@dataclass
class TileConstraints:
    """Execution constraints of one tile (paper Def. 3 + Def. 7 excerpt).

    ``wheel`` is the TDMA wheel size ``w``; ``slice_size`` the slice
    ``omega`` reserved for this application; ``schedule`` the static-order
    schedule of the application's actors bound to this tile.
    """

    name: str
    wheel: int
    slice_size: int
    schedule: StaticOrderSchedule
    #: where the slice window starts on the wheel (0 = paper's aligned
    #: assumption; committed applications get disjoint offsets)
    slice_start: int = 0

    def __post_init__(self) -> None:
        if self.wheel <= 0:
            raise ValueError(f"tile {self.name!r}: wheel must be positive")
        if not 0 <= self.slice_size <= self.wheel:
            raise ValueError(
                f"tile {self.name!r}: slice {self.slice_size} outside "
                f"[0, {self.wheel}]"
            )
        if not 0 <= self.slice_start <= self.wheel - self.slice_size:
            raise ValueError(
                f"tile {self.name!r}: slice window "
                f"[{self.slice_start}, {self.slice_start + self.slice_size})"
                f" does not fit the wheel"
            )


@dataclass
class ConstrainedThroughputResult:
    """Steady-state throughput under schedule and TDMA constraints."""

    period: Optional[int]
    period_firings: Dict[str, int]
    transient_time: int
    states_explored: int
    deadlocked: bool = False
    #: compact, independently replayable evidence of the periodic phase
    #: (see ``docs/VERIFICATION.md``); None for deadlocked executions
    certificate: Optional[Dict[str, Any]] = None

    def of(self, actor: str) -> Fraction:
        """Firings of ``actor`` per time unit in the periodic phase."""
        if self.deadlocked or not self.period:
            return Fraction(0)
        return Fraction(self.period_firings.get(actor, 0), self.period)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded firing: who ran where and when.

    ``tile`` is None for unscheduled (connection/alignment) actors.
    ``start`` is the instant the firing claimed its tokens; ``end`` the
    instant it produced its outputs (wall-clock, including time spent
    outside the TDMA slice).
    """

    actor: str
    tile: Optional[str]
    start: int
    end: int


class _ConstrainedEngine:
    """Event-driven execution of a binding-aware graph under constraints."""

    def __init__(
        self,
        graph: SDFGraph,
        tiles: Sequence[TileConstraints],
        max_states: int,
        trace: Optional[List[TraceEvent]] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.graph = graph
        self.tiles = list(tiles)
        self.max_states = max_states
        self.trace = trace
        self.budget = budget

        self._actors = graph.actor_names
        self._index = {a: i for i, a in enumerate(self._actors)}
        self._times = [graph.actor(a).execution_time for a in self._actors]
        channels = graph.channel_names
        channel_index = {c: i for i, c in enumerate(channels)}
        self._initial_tokens = [graph.channel(c).tokens for c in channels]
        self._inputs: List[List[Tuple[int, int]]] = []
        self._outputs: List[List[Tuple[int, int]]] = []
        for actor in self._actors:
            self._inputs.append(
                [
                    (channel_index[c.name], c.consumption)
                    for c in graph.in_channels(actor)
                ]
            )
            self._outputs.append(
                [
                    (channel_index[c.name], c.production)
                    for c in graph.out_channels(actor)
                ]
            )
        # actor index -> tile index (or None for unscheduled actors)
        self._tile_of: List[Optional[int]] = [None] * len(self._actors)
        for tile_idx, tile in enumerate(self.tiles):
            for actor in tile.schedule.actors:
                if actor not in self._index:
                    raise KeyError(
                        f"schedule of tile {tile.name!r} mentions unknown "
                        f"actor {actor!r}"
                    )
                if self._tile_of[self._index[actor]] is not None:
                    raise ValueError(
                        f"actor {actor!r} scheduled on more than one tile"
                    )
                self._tile_of[self._index[actor]] = tile_idx

    # -- helpers -------------------------------------------------------
    def _tokens_available(self, actor: int, tokens: List[int]) -> bool:
        return all(tokens[c] >= rate for c, rate in self._inputs[actor])

    def _consume(self, actor: int, tokens: List[int]) -> None:
        for channel, rate in self._inputs[actor]:
            tokens[channel] -= rate

    def _produce(self, actor: int, tokens: List[int]) -> None:
        for channel, rate in self._outputs[actor]:
            tokens[channel] += rate

    def _record(
        self, result: ConstrainedThroughputResult, started: float, zero_firings: int
    ) -> None:
        """Export one constrained execution's statistics."""
        obs = get_metrics()
        obs.counter("constrained.executions")
        obs.counter("constrained.states", result.states_explored)
        obs.counter("constrained.zero_time_firings", zero_firings)
        obs.gauge("constrained.hash_set_size", result.states_explored)
        obs.gauge("constrained.transient_time", result.transient_time)
        obs.gauge("constrained.period", result.period or 0)
        if result.deadlocked:
            obs.counter("constrained.deadlocks")
        obs.observe("constrained.execute", perf_counter() - started)

    def _snapshot(
        self,
        time: int,
        tokens: List[int],
        unscheduled_active: List[List[int]],
        tile_active: List[Optional[Tuple[int, int]]],
        schedule_pos: List[int],
        completed: List[int],
        zero_firings: int,
        seen: Dict[Tuple, Tuple[int, Tuple[int, ...]]],
    ) -> Dict[str, Any]:
        """The full frontier as a JSON-serialisable dict (see state_space)."""
        return {
            "time": time,
            "tokens": list(tokens),
            "unscheduled_active": [list(r) for r in unscheduled_active],
            "tile_active": [
                list(firing) if firing is not None else None
                for firing in tile_active
            ],
            "schedule_pos": list(schedule_pos),
            "completed": list(completed),
            "zero_firings": zero_firings,
            "seen": [
                [_ckey_to_jsonable(key), [when, list(counts)]]
                for key, (when, counts) in seen.items()
            ],
        }

    def run(
        self, resume: Optional[Dict[str, Any]] = None
    ) -> ConstrainedThroughputResult:
        obs = get_metrics()
        tr = get_trace()
        fault_point("constrained.run", graph=self.graph.name)
        started = perf_counter() if obs.enabled else 0.0
        trace_started = tr.now() if tr.enabled else 0.0
        budget = self.budget
        if budget is not None:
            budget.checkpoint()
        if resume is None:
            zero_firings = 0
            tokens = list(self._initial_tokens)
            # remaining *work* per active firing; unscheduled actors may
            # have several concurrent firings, tiles at most one.
            unscheduled_active: List[List[int]] = [[] for _ in self._actors]
            tile_active: List[Optional[Tuple[int, int]]] = (
                [None] * len(self.tiles)
            )
            schedule_pos = [0] * len(self.tiles)
            completed = [0] * len(self._actors)
            time = 0
            seen: Dict[Tuple, Tuple[int, Tuple[int, ...]]] = {}
        else:
            zero_firings = resume["zero_firings"]
            tokens = list(resume["tokens"])
            unscheduled_active = [list(r) for r in resume["unscheduled_active"]]
            tile_active = [
                tuple(firing) if firing is not None else None
                for firing in resume["tile_active"]
            ]
            schedule_pos = list(resume["schedule_pos"])
            completed = list(resume["completed"])
            time = resume["time"]
            seen = {
                _ckey_from_jsonable(key): (when, tuple(counts))
                for key, (when, counts) in resume["seen"]
            }
        # trace bookkeeping lives outside the hashed state: firings of
        # one actor all take the same time, so FIFO start matching is
        # exact for concurrent unscheduled firings.  (Traces do not
        # survive a checkpoint/resume; resumed runs pass trace=None.)
        unscheduled_starts: List[List[int]] = [[] for _ in self._actors]
        tile_started: List[int] = [0] * len(self.tiles)

        def record(actor: int, tile_idx: Optional[int], start: int, end: int) -> None:
            if self.trace is not None:
                self.trace.append(
                    TraceEvent(
                        actor=self._actors[actor],
                        tile=None if tile_idx is None else self.tiles[tile_idx].name,
                        start=start,
                        end=end,
                    )
                )

        def start_enabled() -> None:
            nonlocal zero_firings
            progress = True
            zero_guard = 0
            while progress:
                progress = False
                # unscheduled actors (connection/alignment actors)
                for actor in range(len(self._actors)):
                    if self._tile_of[actor] is not None:
                        continue
                    while self._tokens_available(actor, tokens):
                        self._consume(actor, tokens)
                        if self._times[actor] == 0:
                            self._produce(actor, tokens)
                            completed[actor] += 1
                            record(actor, None, time, time)
                            zero_guard += 1
                            zero_firings += 1
                            if zero_guard > 1_000_000:
                                get_metrics().counter(
                                    "constrained.zero_time_guard_hits"
                                )
                                raise StateSpaceExplosionError(
                                    "zero-duration firing loop in "
                                    "constrained execution"
                                )
                        else:
                            unscheduled_active[actor].append(self._times[actor])
                            unscheduled_starts[actor].append(time)
                        progress = True
                # scheduled actors: head of static order, idle tile
                for tile_idx, tile in enumerate(self.tiles):
                    if tile_active[tile_idx] is not None:
                        continue
                    actor_name = tile.schedule.entry(schedule_pos[tile_idx])
                    actor = self._index[actor_name]
                    if self._tokens_available(actor, tokens):
                        self._consume(actor, tokens)
                        schedule_pos[tile_idx] += 1
                        if self._times[actor] == 0:
                            self._produce(actor, tokens)
                            completed[actor] += 1
                            record(actor, tile_idx, time, time)
                        else:
                            tile_active[tile_idx] = (actor, self._times[actor])
                            tile_started[tile_idx] = time
                        progress = True

        while True:
            if budget is not None:
                try:
                    budget.tick()
                except BudgetExceededError as error:
                    error.partial.setdefault("graph", self.graph.name)
                    error.partial.setdefault("states_explored", len(seen))
                    error.partial["engine_state"] = self._snapshot(
                        time,
                        tokens,
                        unscheduled_active,
                        tile_active,
                        schedule_pos,
                        completed,
                        zero_firings,
                        seen,
                    )
                    raise
            start_enabled()
            key = (
                tuple(tokens),
                tuple(
                    (i, tuple(sorted(remaining)))
                    for i, remaining in enumerate(unscheduled_active)
                    if remaining
                ),
                tuple(tile_active),
                tuple(
                    tile.schedule.canonical_position(schedule_pos[i])
                    for i, tile in enumerate(self.tiles)
                ),
                tuple(time % tile.wheel for tile in self.tiles),
            )
            if key in seen:
                first_time, first_completed = seen[key]
                period = time - first_time
                firings = {
                    name: completed[i] - first_completed[i]
                    for i, name in enumerate(self._actors)
                }
                result = ConstrainedThroughputResult(
                    period=period,
                    period_firings=firings,
                    transient_time=first_time,
                    states_explored=len(seen),
                    certificate={
                        "format": "repro-certificate",
                        "version": 1,
                        "kind": "constrained",
                        "graph": self.graph.name,
                        "actors": list(self._actors),
                        "channels": list(self.graph.channel_names),
                        "execution_times": list(self._times),
                        "tiles": [
                            {
                                "name": tile.name,
                                "wheel": tile.wheel,
                                "slice_size": tile.slice_size,
                                "slice_start": tile.slice_start,
                                "transient": list(tile.schedule.transient),
                                "periodic": list(tile.schedule.periodic),
                                "position": tile.schedule.canonical_position(
                                    schedule_pos[i]
                                ),
                            }
                            for i, tile in enumerate(self.tiles)
                        ],
                        "window_start": time,
                        "period": period,
                        "firings": dict(firings),
                        "tokens": list(tokens),
                        "unscheduled_active": [
                            sorted(remaining)
                            for remaining in unscheduled_active
                        ],
                        "tile_active": [
                            list(firing) if firing is not None else None
                            for firing in tile_active
                        ],
                    },
                )
                if obs.enabled:
                    self._record(result, started, zero_firings)
                if tr.enabled:
                    tr.complete(
                        "engine",
                        "constrained.execute",
                        trace_started,
                        tr.now(),
                        graph=self.graph.name,
                        states=len(seen),
                        period=period,
                        transient_time=first_time,
                    )
                return result
            seen[key] = (time, tuple(completed))
            if len(seen) > self.max_states:
                raise StateSpaceExplosionError(
                    f"exceeded {self.max_states} states in constrained "
                    f"execution of {self.graph.name!r}"
                )

            # next completion event
            next_event: Optional[int] = None
            for active in unscheduled_active:
                for remaining in active:
                    candidate = time + remaining
                    if next_event is None or candidate < next_event:
                        next_event = candidate
            for tile_idx, firing in enumerate(tile_active):
                if firing is None:
                    continue
                tile = self.tiles[tile_idx]
                candidate = gated_finish(
                    time,
                    firing[1],
                    tile.wheel,
                    tile.slice_size,
                    tile.slice_start,
                )
                if candidate is None:
                    continue  # zero slice: this firing never finishes
                if next_event is None or candidate < next_event:
                    next_event = candidate
            if next_event is None:
                result = ConstrainedThroughputResult(
                    period=None,
                    period_firings={},
                    transient_time=time,
                    states_explored=len(seen),
                    deadlocked=True,
                )
                if obs.enabled:
                    self._record(result, started, zero_firings)
                if tr.enabled:
                    tr.complete(
                        "engine",
                        "constrained.execute",
                        trace_started,
                        tr.now(),
                        graph=self.graph.name,
                        states=len(seen),
                        deadlocked=True,
                    )
                return result

            if tr.enabled:
                # one instant per tile whose TDMA wheel completes at
                # least one rotation inside this event-to-event step
                for tile in self.tiles:
                    rotations = next_event // tile.wheel - time // tile.wheel
                    if rotations > 0:
                        tr.instant(
                            "tdma",
                            "wheel.rotation",
                            tile=tile.name,
                            rotations=rotations,
                            model_time=next_event,
                        )

            step = next_event - time
            for actor, active in enumerate(unscheduled_active):
                if not active:
                    continue
                finished = 0
                for i in range(len(active)):
                    active[i] -= step
                    if active[i] == 0:
                        finished += 1
                if finished:
                    unscheduled_active[actor] = [r for r in active if r > 0]
                    for _ in range(finished):
                        self._produce(actor, tokens)
                        if unscheduled_starts[actor]:
                            record(
                                actor,
                                None,
                                unscheduled_starts[actor].pop(0),
                                next_event,
                            )
                    completed[actor] += finished
            for tile_idx, firing in enumerate(tile_active):
                if firing is None:
                    continue
                tile = self.tiles[tile_idx]
                progressed = busy_time(
                    time,
                    next_event,
                    tile.wheel,
                    tile.slice_size,
                    tile.slice_start,
                )
                remaining = firing[1] - progressed
                if remaining <= 0:
                    self._produce(firing[0], tokens)
                    completed[firing[0]] += 1
                    record(firing[0], tile_idx, tile_started[tile_idx], next_event)
                    tile_active[tile_idx] = None
                else:
                    tile_active[tile_idx] = (firing[0], remaining)
            time = next_event


def constrained_throughput(
    graph: SDFGraph,
    tiles: Sequence[TileConstraints],
    max_states: int = DEFAULT_MAX_STATES,
    trace: Optional[List[TraceEvent]] = None,
    budget: Optional[Budget] = None,
    resume: Optional[Dict[str, Any]] = None,
) -> ConstrainedThroughputResult:
    """Throughput of ``graph`` under static-order + TDMA constraints.

    ``graph`` is typically a binding-aware SDFG
    (:func:`repro.appmodel.binding_aware.build_binding_aware_graph`);
    actors appearing in no tile's schedule run unconstrained.

    When any tile with scheduled actors has a zero slice the execution
    deadlocks (its firings never finish) and a zero-throughput result is
    returned without exploration.

    Passing a list as ``trace`` records every firing as a
    :class:`TraceEvent` (transient plus one full period), which
    :mod:`repro.extensions.tracing` renders as a Gantt chart.

    On a budget breach the raised
    :class:`~repro.resilience.budget.BudgetExceededError` carries
    ``error.partial["checkpoint"]`` (kind ``"constrained"``); passing
    that payload back as ``resume`` — normally via
    :func:`repro.resilience.checkpoint.resume_from_checkpoint` —
    continues the interrupted exploration bit-identically.  Traces do
    not survive a resume.
    """
    for tile in tiles:
        if tile.slice_size == 0 and tile.schedule.actors:
            get_metrics().counter("constrained.zero_slice_shortcuts")
            tr = get_trace()
            if tr.enabled:
                tr.instant(
                    "tdma",
                    "zero_slice_shortcut",
                    graph=graph.name,
                    tile=tile.name,
                )
            return ConstrainedThroughputResult(
                period=None,
                period_firings={},
                transient_time=0,
                states_explored=0,
                deadlocked=True,
            )
    engine = _ConstrainedEngine(
        graph, tiles, max_states, trace=trace, budget=budget
    )
    try:
        return engine.run(resume=resume.get("engine_state") if resume else None)
    except BudgetExceededError as error:
        error.partial["checkpoint"] = {
            "format": "repro-checkpoint",
            "version": 1,
            "kind": "constrained",
            "graph": graph_to_dict(graph),
            "tiles": [
                {
                    "name": tile.name,
                    "wheel": tile.wheel,
                    "slice_size": tile.slice_size,
                    "slice_start": tile.slice_start,
                    "transient": list(tile.schedule.transient),
                    "periodic": list(tile.schedule.periodic),
                }
                for tile in tiles
            ],
            "max_states": max_states,
            "engine_state": error.partial.get("engine_state"),
            "budget": {
                "states_charged": budget.states_charged,
                "checks_charged": budget.checks_charged,
                "elapsed": budget.elapsed(),
            }
            if budget is not None
            else None,
        }
        raise
