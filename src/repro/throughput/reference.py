"""Reference throughput path: SDF -> HSDF -> maximum cycle ratio.

This is what pre-existing resource-allocation flows must do and what the
paper's run-time comparison (Section 1: 21 minutes vs 3 minutes on the
H.263 decoder) is measured against.  It also serves as an independent
oracle for the state-space engine in the test suite.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Union

from repro.sdf.graph import SDFGraph
from repro.sdf.transform import sdf_to_hsdf
from repro.throughput.mcr import hsdf_iteration_rate

Rate = Union[Fraction, float]


def reference_throughput(
    graph: SDFGraph,
    execution_times: Optional[Dict[str, int]] = None,
    exact: bool = True,
    limit: Optional[int] = 20000,
) -> Rate:
    """Iteration rate of ``graph`` computed the classical way.

    The graph is unfolded into its HSDFG (one actor per firing of an
    iteration) and the maximum cycle ratio of the result is inverted.
    ``exact=False`` selects the numpy-backed parametric search, needed
    for graphs whose HSDFG has thousands of actors.

    The result is directly comparable to
    ``repro.throughput.throughput(graph).iteration_rate`` for graphs
    with unrestricted auto-concurrency.
    """
    working = graph
    if execution_times is not None:
        working = graph.copy()
        for name, value in execution_times.items():
            working.actor(name).execution_time = value
    hsdf = sdf_to_hsdf(working)
    return hsdf_iteration_rate(hsdf, exact=exact, limit=limit)
