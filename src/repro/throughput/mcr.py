"""Maximum cycle ratio analysis on HSDFGs (the classical baseline).

For a homogeneous SDFG, the self-timed iteration period equals the
maximum, over all cycles, of (total execution time on the cycle) /
(total initial tokens on the cycle); the iteration rate is its
reciprocal.  Pre-existing allocation flows must convert the SDFG to its
(possibly exponentially larger) HSDFG and run such an analysis; the
paper's §1 run-time comparison is against exactly this path.

Two implementations are provided:

* :func:`max_cycle_ratio_exact` — enumerate simple cycles (exact
  Fractions).  Only viable for small graphs; used as a test oracle.
* :func:`max_cycle_ratio_numeric` — Lawler's parametric binary search
  with a numpy-vectorised Bellman-Ford positive-cycle test, then an
  exact rational snap via bounded-denominator approximation.  Scales to
  the 4754-actor H.263 HSDFG.
"""

from __future__ import annotations

from fractions import Fraction
from time import perf_counter
from typing import Optional, Tuple, Union

import numpy as np

from repro.obs import get_metrics
from repro.resilience.budget import Budget
from repro.sdf.cycles import max_cycle_ratio as _enumerated_max_cycle_ratio
from repro.sdf.graph import SDFGraph

Ratio = Union[Fraction, float]


def max_cycle_ratio_exact(hsdf: SDFGraph, limit: Optional[int] = None) -> Optional[Ratio]:
    """Exact maximum cycle ratio via cycle enumeration (small graphs only).

    Cycle weight is the execution time of the actors on the cycle;
    the denominator is the tokens on its edges.  ``None`` for acyclic
    graphs; ``float('inf')`` when a token-free cycle exists (deadlock).
    """
    obs = get_metrics()
    started = perf_counter() if obs.enabled else 0.0
    weights = {a.name: a.execution_time for a in hsdf.actors}
    ratio = _enumerated_max_cycle_ratio(hsdf, weights, limit=limit)
    if obs.enabled:
        obs.counter("mcr.enumerate.calls")
        obs.observe("mcr.enumerate", perf_counter() - started)
    return ratio


def _edge_arrays(hsdf: SDFGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    index = {name: i for i, name in enumerate(hsdf.actor_names)}
    sources = np.fromiter(
        (index[c.src] for c in hsdf.channels), dtype=np.int64
    )
    targets = np.fromiter(
        (index[c.dst] for c in hsdf.channels), dtype=np.int64
    )
    times = np.fromiter(
        (hsdf.actor(c.src).execution_time for c in hsdf.channels),
        dtype=np.float64,
    )
    tokens = np.fromiter((c.tokens for c in hsdf.channels), dtype=np.float64)
    return sources, targets, times, tokens, len(index)


def _has_positive_cycle(
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    node_count: int,
) -> bool:
    """Bellman-Ford style test: does any cycle have positive total weight?

    Longest-path distances are relaxed ``node_count`` times; any further
    improvement implies a positive cycle.  Distances are clipped to
    avoid float overflow on long graphs.
    """
    if node_count == 0 or sources.size == 0:
        return False
    dist = np.zeros(node_count)
    for _ in range(node_count):
        candidate = dist[sources] + weights
        new_dist = dist.copy()
        np.maximum.at(new_dist, targets, candidate)
        if np.array_equal(new_dist, dist):
            return False  # fixpoint: no positive cycle reachable
        dist = np.minimum(new_dist, 1e15)
    candidate = dist[sources] + weights
    final = dist.copy()
    np.maximum.at(final, targets, candidate)
    return bool(np.any(final > dist + 1e-9))


def max_cycle_ratio_numeric(
    hsdf: SDFGraph,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> Optional[Ratio]:
    """Maximum cycle ratio via parametric binary search (large graphs).

    For a candidate ratio ``lam`` the graph with edge weights
    ``tau(src) - lam * tokens(edge)`` has a positive cycle iff the true
    maximum ratio exceeds ``lam``.  The search narrows a float interval
    and the result is snapped to the unique rational with denominator
    bounded by the total token count.  Returns ``None`` when the graph
    is acyclic, ``float('inf')`` when a token-free cycle exists.
    """
    obs = get_metrics()
    started = perf_counter() if obs.enabled else 0.0
    sources, targets, times, tokens, node_count = _edge_arrays(hsdf)
    if sources.size == 0:
        return None

    # Token-free positive-time cycle => infinite ratio (deadlock).
    zero_token = tokens == 0
    if zero_token.any():
        if _has_positive_cycle(
            sources[zero_token],
            targets[zero_token],
            # weight 1 per edge: any cycle among token-free edges counts
            np.ones(int(zero_token.sum())),
            node_count,
        ):
            return float("inf")

    # Cycle existence at all: lam = 0 weights are execution times >= 0;
    # use weight 1 to detect any cycle.
    if not _has_positive_cycle(
        sources, targets, np.ones(sources.size), node_count
    ):
        return None

    total_time = float(times.sum())
    low, high = 0.0, max(total_time, 1.0)
    iterations = 0
    while high - low > tolerance:
        if budget is not None:
            budget.checkpoint()
        iterations += 1
        mid = (low + high) / 2.0
        if _has_positive_cycle(
            sources, targets, times - mid * tokens, node_count
        ):
            low = mid
        else:
            high = mid
    total_tokens = int(tokens.sum())
    midpoint = Fraction((low + high) / 2.0)
    if obs.enabled:
        obs.counter("mcr.lawler.calls")
        obs.counter("mcr.lawler.iterations", iterations)
        obs.observe("mcr.lawler", perf_counter() - started)
    return midpoint.limit_denominator(max(total_tokens, 1))


def hsdf_iteration_rate(
    hsdf: SDFGraph,
    exact: bool = True,
    limit: Optional[int] = 20000,
    method: Optional[str] = None,
    budget: Optional[Budget] = None,
) -> Ratio:
    """Self-timed iteration rate of an HSDFG (reciprocal of its MCR).

    ``float('inf')`` for acyclic graphs, 0 when a token-free cycle makes
    the graph deadlock.  ``method`` selects the MCR algorithm explicitly
    (``"enumerate"``, ``"numeric"`` or ``"howard"``); by default
    ``exact`` picks between enumeration and the numeric search.
    A :class:`Budget` deadline is honoured by the numeric and Howard
    oracles (the enumeration oracle is bounded by ``limit`` instead).
    """
    if method is None:
        method = "enumerate" if exact else "numeric"
    if method == "enumerate":
        ratio = max_cycle_ratio_exact(hsdf, limit=limit)
    elif method == "numeric":
        ratio = max_cycle_ratio_numeric(hsdf, budget=budget)
    elif method == "howard":
        from repro.throughput.howard import howard_max_cycle_ratio

        ratio = howard_max_cycle_ratio(hsdf, budget=budget)
    else:
        raise ValueError(f"unknown MCR method {method!r}")
    if ratio is None:
        return float("inf")
    if ratio == float("inf"):
        return Fraction(0)
    if ratio == 0:
        return float("inf")
    return 1 / ratio
