"""Howard's policy iteration for the maximum cycle ratio (exact).

A third, independent implementation of the HSDF throughput oracle
(besides cycle enumeration and the parametric Lawler search): policy
iteration over "successor choices".  Each node of a strongly connected
component picks one outgoing edge (a *policy*); the policy graph is
functional, so every node leads into exactly one cycle, whose ratio

    lambda = (sum of edge weights) / (sum of edge tokens)

is the policy's value at that node.  Improvement switches a node to an
edge that reaches a better cycle, or — at equal lambda — to one with a
larger bias value `v(u) = w_e - lambda * t_e + v(next(u))`.  With
exact ``Fraction`` arithmetic the iteration terminates at the maximum
cycle ratio; in practice it converges in a handful of rounds, making it
the fastest exact option in this repository for mid-size HSDFGs.

Edge weights follow the repository convention for HSDF throughput: the
weight of an edge is the execution time of its *source* actor, so a
cycle's weight sum equals the total execution time of the actors on it.
"""

from __future__ import annotations

from fractions import Fraction
from time import perf_counter
from typing import List, Optional, Tuple, Union

from repro.obs import get_metrics
from repro.resilience.budget import Budget
from repro.sdf.analysis import strongly_connected_components
from repro.sdf.graph import SDFGraph

Ratio = Union[Fraction, float]


class _Component:
    """One strongly connected component prepared for policy iteration."""

    def __init__(self, graph: SDFGraph, nodes: List[str]) -> None:
        keep = set(nodes)
        self.nodes = list(nodes)
        self.index = {name: i for i, name in enumerate(self.nodes)}
        # out[u] = [(v, weight, tokens)]
        self.out: List[List[Tuple[int, int, int]]] = [[] for _ in self.nodes]
        for channel in graph.channels:
            if channel.src in keep and channel.dst in keep:
                self.out[self.index[channel.src]].append(
                    (
                        self.index[channel.dst],
                        graph.actor(channel.src).execution_time,
                        channel.tokens,
                    )
                )

    def has_cycle(self) -> bool:
        return all(edges for edges in self.out) and len(self.nodes) > 0


def _evaluate_policy(
    component: _Component, policy: List[int]
) -> Tuple[List[Ratio], List[Fraction], Optional[Ratio]]:
    """Per-node cycle ratio and bias under ``policy``.

    Returns (lambda per node, bias per node, infinite-ratio marker).
    A reached cycle with zero total tokens has an infinite ratio; the
    caller reports it immediately (the graph deadlocks).
    """
    count = len(component.nodes)
    lam: List[Optional[Ratio]] = [None] * count
    bias: List[Optional[Fraction]] = [None] * count
    state = [0] * count  # 0 unvisited, 1 on stack, 2 done

    for root in range(count):
        if state[root] == 2:
            continue
        # walk the functional graph until a done node or a cycle
        path: List[int] = []
        node = root
        while state[node] == 0:
            state[node] = 1
            path.append(node)
            node = component.out[node][policy[node]][0]
        if state[node] == 1:
            # found a new cycle: nodes from `node` onward in `path`
            start = path.index(node)
            cycle = path[start:]
            weight_sum = 0
            token_sum = 0
            for member in cycle:
                _, weight, tokens = component.out[member][policy[member]]
                weight_sum += weight
                token_sum += tokens
            if token_sum == 0:
                return [], [], float("inf")
            ratio: Ratio = Fraction(weight_sum, token_sum)
            anchor = cycle[0]
            lam[anchor] = ratio
            bias[anchor] = Fraction(0)
            # propagate values backwards around the cycle
            ordered = cycle[1:][::-1]
            for member in ordered:
                successor, weight, tokens = component.out[member][
                    policy[member]
                ]
                lam[member] = ratio
                bias[member] = (
                    Fraction(weight) - ratio * tokens + bias[successor]
                )
        # resolve the tail of the path (and any prefix before the cycle)
        for member in reversed(path):
            if lam[member] is None:
                successor, weight, tokens = component.out[member][
                    policy[member]
                ]
                lam[member] = lam[successor]
                bias[member] = (
                    Fraction(weight)
                    - lam[successor] * tokens
                    + bias[successor]
                )
            state[member] = 2
        state[node] = 2
    return lam, bias, None  # type: ignore[return-value]


def _howard_component(
    component: _Component, budget: Optional[Budget] = None
) -> Ratio:
    obs = get_metrics()
    rounds = 0
    policy = [0] * len(component.nodes)
    while True:
        if budget is not None:
            budget.checkpoint()
        rounds += 1
        lam, bias, infinite = _evaluate_policy(component, policy)
        if infinite is not None:
            if obs.enabled:
                obs.counter("mcr.howard.rounds", rounds)
            return infinite
        improved = False
        for node, edges in enumerate(component.out):
            best_choice = policy[node]
            best_lambda = lam[component.out[node][policy[node]][0]]
            best_value = (
                Fraction(component.out[node][policy[node]][1])
                - lam[node] * component.out[node][policy[node]][2]
                + bias[component.out[node][policy[node]][0]]
            )
            for choice, (successor, weight, tokens) in enumerate(edges):
                if choice == policy[node]:
                    continue
                successor_lambda = lam[successor]
                if successor_lambda > best_lambda:
                    best_choice = choice
                    best_lambda = successor_lambda
                    best_value = (
                        Fraction(weight)
                        - successor_lambda * tokens
                        + bias[successor]
                    )
                    improved = True
                elif successor_lambda == best_lambda == lam[node]:
                    value = (
                        Fraction(weight)
                        - lam[node] * tokens
                        + bias[successor]
                    )
                    if value > best_value:
                        best_choice = choice
                        best_value = value
                        improved = True
            policy[node] = best_choice
        if not improved:
            if obs.enabled:
                obs.counter("mcr.howard.rounds", rounds)
            return max(lam)  # type: ignore[arg-type]


def howard_max_cycle_ratio(
    graph: SDFGraph, budget: Optional[Budget] = None
) -> Optional[Ratio]:
    """Maximum cycle ratio of an HSDF-style graph via Howard iteration.

    Weight of a cycle = execution times of its actors; denominator =
    tokens on its edges.  Returns None for acyclic graphs and
    ``float('inf')`` when a token-free cycle exists.
    """
    obs = get_metrics()
    started = perf_counter() if obs.enabled else 0.0
    best: Optional[Ratio] = None
    analysed = 0
    for nodes in strongly_connected_components(graph):
        if len(nodes) == 1:
            actor = nodes[0]
            if not any(
                c.is_self_loop for c in graph.out_channels(actor)
            ):
                continue
        component = _Component(graph, nodes)
        analysed += 1
        ratio = _howard_component(component, budget=budget)
        if best is None or ratio > best:
            best = ratio
    if obs.enabled:
        obs.counter("mcr.howard.calls")
        obs.counter("mcr.howard.components", analysed)
        obs.observe("mcr.howard", perf_counter() - started)
    return best
