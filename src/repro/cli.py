"""Command-line interface: ``repro-alloc``.

Sub-commands::

    repro-alloc analyse GRAPH.json            # throughput of an SDFG
    repro-alloc generate --set mixed -n 5     # emit benchmark graphs
    repro-alloc allocate --set processing ... # run the full flow
    repro-alloc example                       # the paper's running example
    repro-alloc profile GRAPH.json            # instrumented run + JSON report
    repro-alloc verify BUNDLE.json            # certify a saved allocation
    repro-alloc bench --out BENCH.json        # curated perf workloads
    repro-alloc bench --compare OLD.json      # regression check
    repro-alloc lint MODEL.json ...           # static diagnostics (SARIF)
    repro-alloc serve --spool DIR             # allocation-as-a-service daemon
    repro-alloc submit APP.json ARCH.json     # job submission client
    repro-alloc status --spool DIR            # live one-screen service view

Every sub-command accepts ``--metrics PATH`` to dump the observability
snapshot (see ``docs/OBSERVABILITY.md``) collected during the run,
``--trace PATH`` to record event-level tracing as a Chrome/Perfetto
trace file, and ``--checkpoint PATH`` / ``--resume PATH`` to persist
and continue interrupted explorations (see ``docs/VERIFICATION.md``).
Both the metrics snapshot and the trace are written even when the run
fails, so a budget-exhausted run still leaves its evidence behind.
Graphs are exchanged in the JSON dialect of
:mod:`repro.sdf.serialization`.

Exit codes (see ``docs/ROBUSTNESS.md``): 0 success, 2 user error
(missing file, malformed input, infeasible allocation — one-line
diagnostic on stderr), 3 resource budget exhausted (``--deadline`` /
``--max-states`` hit, or the state space exploded), 4 verification
refuted an allocation (``verify``), 5 benchmark regression detected
(``bench --compare``), 6 lint found error-severity diagnostics
(``lint``; see ``docs/ANALYSIS.md``), 7 the allocation service
rejected a submission because its bounded queue is full (``submit``;
see ``docs/SERVICE.md``).  ``--debug`` re-raises the underlying
exception with its full traceback instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.analysis import AnalysisReport
    from repro.arch.architecture import ArchitectureGraph

from repro.arch.presets import benchmark_architectures
from repro.core.flow import allocate_until_failure
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.exitcodes import HTTP_EXIT_MAP
from repro.generate.benchmark import generate_benchmark_set
from repro.obs import (
    JsonSink,
    collecting,
    format_summary,
    to_json,
    tracing,
    write_chrome_trace,
)
from repro.resilience.budget import Budget, BudgetExceededError
from repro.sdf.serialization import graph_from_json, graph_to_dict
from repro.throughput.state_space import (
    StateSpaceExplosionError,
    throughput,
)


def _cmd_analyse(args: argparse.Namespace) -> int:
    with open(args.graph) as handle:
        graph = graph_from_json(handle.read(), source=args.graph)
    if args.resume:
        from repro.resilience.checkpoint import (
            read_checkpoint,
            resume_from_checkpoint,
        )

        data = read_checkpoint(args.resume)
        if data.get("kind") != "state-space":
            raise ValueError(
                f"cannot resume a {data.get('kind')!r} checkpoint with "
                "'analyse' (expected a state-space checkpoint)"
            )
        result = resume_from_checkpoint(data, budget=args.budget)
    else:
        result = throughput(
            graph,
            auto_concurrency=not args.no_auto_concurrency,
            budget=args.budget,
        )
    print(f"graph: {graph.name}")
    print(f"actors: {len(graph)}  channels: {len(graph.channels)}")
    print(f"iteration rate: {result.iteration_rate}")
    for actor in graph.actor_names:
        print(f"  throughput({actor}) = {result.of(actor)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    architecture = benchmark_architectures()[0]
    applications = generate_benchmark_set(
        args.set, args.count, architecture.processor_types(), seed=args.seed
    )
    payload = [graph_to_dict(app.graph) for app in applications]
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    architecture = benchmark_architectures()[args.architecture]
    applications = generate_benchmark_set(
        args.set, args.count, architecture.processor_types(), seed=args.seed
    )
    weights = CostWeights(*args.weights)
    allocator = ResourceAllocator(weights=weights, backend=args.backend)
    pre_flow = None
    if args.save_allocation:
        from repro.arch.serialization import (
            architecture_from_dict,
            architecture_to_dict,
        )

        pre_flow = architecture_from_dict(architecture_to_dict(architecture))
    result = allocate_until_failure(
        architecture,
        applications,
        allocator=allocator,
        budget=args.budget,
        degrade=args.degrade,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )
    if args.save_allocation:
        from repro.appmodel.serialization import bundle_to_json

        with open(args.save_allocation, "w") as handle:
            handle.write(
                bundle_to_json(
                    pre_flow, result.allocations, rungs=result.rungs
                )
            )
        print(f"allocation bundle written to {args.save_allocation}")
    print(f"architecture: {architecture.name}")
    print(f"cost weights: {weights}")
    print(f"applications bound: {result.applications_bound}")
    if result.degraded_applications:
        print(f"degraded allocations: {result.degraded_applications}")
    print(f"throughput checks: {result.total_throughput_checks}")
    for key, value in result.utilisation().items():
        print(f"  {key}: {value:.2f}")
    if result.failed_application:
        print(f"stopped at: {result.failed_application}")
    exhausted = [
        record
        for record in result.application_stats
        if record["outcome"] == "budget-exhausted"
    ]
    if exhausted:
        print(
            f"budget exhausted at: {exhausted[0]['application']} "
            "(re-run with --degrade for a conservative fallback)",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_allocate_file(args: argparse.Namespace) -> int:
    from repro.appmodel.serialization import application_from_json
    from repro.arch.serialization import (
        architecture_from_json,
        architecture_to_json,
    )

    with open(args.application) as handle:
        application = application_from_json(
            handle.read(), source=args.application
        )
    with open(args.architecture) as handle:
        architecture = architecture_from_json(
            handle.read(), source=args.architecture
        )
    allocator = ResourceAllocator(
        weights=CostWeights(*args.weights), backend=args.backend
    )
    allocation = allocator.allocate(
        application, architecture, budget=args.budget
    )
    print(f"application: {application.name}")
    print("binding:")
    for actor, tile in allocation.binding.assignment.items():
        print(f"  {actor} -> {tile}")
    print("slices:", allocation.scheduling.slices)
    print(
        f"guaranteed throughput: {allocation.achieved_throughput} "
        f"(constraint {application.throughput_constraint})"
    )
    if args.commit:
        allocation.reservation.commit(architecture)
        with open(args.architecture, "w") as handle:
            handle.write(architecture_to_json(architecture))
        print(f"occupancy committed back to {args.architecture}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.extensions.dot import sdfg_to_dot

    with open(args.graph) as handle:
        graph = graph_from_json(handle.read())
    print(sdfg_to_dot(graph))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.appmodel.example import paper_example
    from repro.extensions.tracing import render_gantt, trace_allocation

    application, architecture, _ = paper_example()
    allocator = ResourceAllocator(weights=CostWeights(*args.weights))
    allocation = allocator.allocate(application, architecture)
    events = trace_allocation(allocation, architecture)
    print(render_gantt(events, width=args.width))
    if args.vcd:
        from repro.extensions.vcd import write_vcd

        write_vcd(events, args.vcd)
        print(f"VCD waveform written to {args.vcd}")
    return 0


def _cmd_dimension(args: argparse.Namespace) -> int:
    from repro.extensions.dimensioning import dimension_platform

    template = benchmark_architectures()[0]
    applications = generate_benchmark_set(
        args.set, args.count, template.processor_types(), seed=args.seed
    )
    result = dimension_platform(
        applications, template.processor_types(), max_tiles=args.max_tiles
    )
    for rows, cols, bound in result.attempts:
        print(f"  {rows}x{cols}: {bound}/{len(applications)} bound")
    if result.found:
        print(f"smallest sufficient platform: {result.architecture.name}")
    else:
        print(f"no mesh up to {args.max_tiles} tiles suffices")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one workload with instrumentation on; emit a JSON report."""
    with collecting() as metrics:
        if args.graph:
            with open(args.graph) as handle:
                graph = graph_from_json(handle.read(), source=args.graph)
            result = throughput(graph, budget=args.budget)
            summary = {
                "mode": "analyse",
                "graph": graph.name,
                "actors": len(graph),
                "channels": len(graph.channels),
                "iteration_rate": str(result.iteration_rate),
                "states_explored": result.states_explored,
            }
        elif args.flow:
            architecture = benchmark_architectures()[args.architecture]
            applications = generate_benchmark_set(
                args.set,
                args.count,
                architecture.processor_types(),
                seed=args.seed,
            )
            flow = allocate_until_failure(
                architecture,
                applications,
                weights=CostWeights(*args.weights),
                budget=args.budget,
            )
            summary = {
                "mode": "flow",
                "architecture": architecture.name,
                "applications_bound": flow.applications_bound,
                "throughput_checks": flow.total_throughput_checks,
                "failed_application": flow.failed_application,
                "applications": flow.application_stats,
            }
        else:
            from repro.appmodel.example import paper_example

            application, architecture, _ = paper_example()
            allocator = ResourceAllocator(weights=CostWeights(*args.weights))
            allocation = allocator.allocate(
                application, architecture, budget=args.budget
            )
            summary = {
                "mode": "example",
                "application": application.name,
                "achieved_throughput": str(allocation.achieved_throughput),
                "throughput_checks": allocation.throughput_checks,
            }
        snapshot = metrics.snapshot()
    report = {"result": summary, "metrics": snapshot}
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(to_json(report) + "\n")
        print(f"metrics report written to {args.out}")
    if args.summary:
        print(format_summary(snapshot))
    elif not args.out:
        print(to_json(report))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    from repro.appmodel.example import paper_example

    application, architecture, _ = paper_example()
    allocator = ResourceAllocator(
        weights=CostWeights(*args.weights), backend=args.backend
    )
    allocation = allocator.allocate(
        application, architecture, budget=args.budget
    )
    if args.save_allocation:
        from repro.appmodel.serialization import bundle_to_json

        with open(args.save_allocation, "w") as handle:
            handle.write(bundle_to_json(architecture, [allocation]))
        print(f"allocation bundle written to {args.save_allocation}")
    print("binding:")
    for actor, tile in sorted(allocation.binding.assignment.items()):
        print(f"  {actor} -> {tile}")
    print("schedules:")
    for tile, schedule in allocation.scheduling.schedules.items():
        transient = " ".join(schedule.transient)
        periodic = " ".join(schedule.periodic)
        print(f"  {tile}: {transient} ({periodic})*")
    print("slices:", allocation.scheduling.slices)
    print(
        f"throughput: {allocation.achieved_throughput} "
        f"(constraint {application.throughput_constraint})"
    )
    print(f"throughput checks: {allocation.throughput_checks}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the curated benchmark workloads; optionally compare reports."""
    from repro.bench import compare_reports, run_bench
    from repro.obs.report import read_report, write_report

    report = run_bench(args.label, fast=not args.full, seed=args.seed)
    out = args.out or f"BENCH_{args.label}.json"
    write_report(out, report)
    print(f"bench report written to {out}")
    for workload in report["workloads"]:
        print(
            f"  {workload['name']}: {workload['wall_seconds']:.3f}s, "
            f"{workload['states_explored']} states, "
            f"{workload['throughput_checks']} throughput checks"
        )
    if not args.compare:
        return 0
    baseline = read_report(args.compare)
    outcome = compare_reports(
        baseline,
        report,
        max_time_ratio=args.max_time_ratio,
        strict_time=args.strict_time,
    )
    for warning in outcome.warnings:
        print(f"bench warning: {warning}", file=sys.stderr)
    if not outcome.ok:
        for regression in outcome.regressions:
            print(f"bench regression: {regression}", file=sys.stderr)
        print(
            f"repro-alloc: {len(outcome.regressions)} benchmark "
            f"regression(s) against {args.compare}",
            file=sys.stderr,
        )
        return 5
    print(f"no regressions against {args.compare}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.appmodel.serialization import bundle_from_json
    from repro.verify import certify_allocation

    with open(args.bundle) as handle:
        bundle = bundle_from_json(handle.read(), source=args.bundle)
    report = certify_allocation(bundle)
    summary = report.summary()
    if summary:
        print(summary)
    else:
        print("bundle contains no allocations")
    if not report.certified:
        print(
            f"repro-alloc: refuted {len(report.refuted)} allocation(s)",
            file=sys.stderr,
        )
        return 4
    return 0


def _lint_document(
    text: str, path: str, architecture: "Optional[ArchitectureGraph]"
) -> "AnalysisReport":
    """Sniff one JSON document's kind and run the matching rules.

    Recognises, in order: a list (linted element-wise, the shape
    ``generate`` emits), an allocation bundle (``format`` envelope), an
    application (``graph`` key), an architecture (``tiles`` key), a
    CSDF graph (phase-sequence rates), and plain SDF graphs otherwise.
    """
    from repro.analysis import (
        AnalysisReport,
        analyse_application,
        analyse_bundle,
        analyse_csdf,
        analyse_graph,
    )
    from repro.appmodel.serialization import (
        BUNDLE_FORMAT,
        application_from_dict,
        bundle_from_dict,
    )
    from repro.csdf.serialization import csdf_from_dict
    from repro.sdf.serialization import SerializationError, graph_from_dict

    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}", source=path)

    def lint_one(document: object) -> AnalysisReport:
        if isinstance(document, list):
            report = AnalysisReport()
            for entry in document:
                report.extend(lint_one(entry))
            return report
        if not isinstance(document, dict):
            raise SerializationError(
                f"expected a JSON object, got {type(document).__name__}",
                source=path,
            )
        if document.get("format") == BUNDLE_FORMAT:
            return analyse_bundle(bundle_from_dict(document, source=path),
                                  source=path)
        if "graph" in document:
            graph = graph_from_dict(document["graph"], source=path)
            graph_report = analyse_graph(graph)
            try:
                application = application_from_dict(document, source=path)
            except SerializationError:
                raise
            except (KeyError, ValueError):
                # the application cannot even be constructed; the graph
                # findings explain why (inconsistent, invalid, ...)
                if graph_report.has_errors:
                    return graph_report
                raise
            return analyse_application(application, architecture)
        if "tiles" in document:
            from repro.analysis import analyse_architecture
            from repro.arch.serialization import architecture_from_dict

            return analyse_architecture(
                architecture_from_dict(document, source=path)
            )
        entries = document.get("channels", []) or document.get("actors", [])
        is_csdf = any(
            isinstance(entry, dict)
            and ("productions" in entry or "execution_times" in entry)
            for entry in entries
        )
        if is_csdf:
            try:
                return analyse_csdf(csdf_from_dict(document, source=path))
            except (KeyError, TypeError, ValueError) as error:
                raise SerializationError(
                    f"bad CSDF document: {error}", source=path
                ) from error
        return analyse_graph(graph_from_dict(document, source=path))

    return lint_one(data)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import AnalysisReport, analyse_architecture, to_sarif
    from repro.obs import get_metrics

    architecture = None
    if args.architecture:
        from repro.arch.serialization import architecture_from_json

        with open(args.architecture) as handle:
            architecture = architecture_from_json(
                handle.read(), source=args.architecture
            )
    if not args.inputs and not args.source:
        raise ValueError(
            "nothing to lint: pass model files and/or --source"
        )
    report = AnalysisReport()
    source_files = 0
    if args.source:
        from repro.analysis.source import analyse_source, default_source_paths

        source_paths = default_source_paths()
        source_files = len(source_paths)
        report.extend(analyse_source(source_paths))
    if architecture is not None:
        report.extend(analyse_architecture(architecture))
    for path in args.inputs:
        with open(path) as handle:
            report.extend(_lint_document(handle.read(), path, architecture))
    if args.select:
        report = report.select(args.select)
    if args.ignore:
        report = report.ignore(args.ignore)
    if args.update_baseline:
        if not args.baseline:
            raise ValueError("--update-baseline requires --baseline PATH")
        with open(args.baseline, "w") as handle:
            json.dump(
                {
                    "format": "repro-lint-baseline",
                    "version": 1,
                    "fingerprints": sorted(
                        {d.fingerprint for d in report}
                    ),
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        print(
            f"baseline with {len(report)} finding(s) written to "
            f"{args.baseline}"
        )
        return 0
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("format") != "repro-lint-baseline":
            raise ValueError(
                f"{args.baseline} is not a repro lint baseline file"
            )
        report = report.without(baseline.get("fingerprints", []))
    obs = get_metrics()
    if obs.enabled:
        obs.counter("lint.files", len(args.inputs))
        obs.counter("lint.findings", len(report))
        if args.source:
            obs.counter("lint.source.files", source_files)
            obs.counter(
                "lint.source.findings",
                sum(1 for d in report if d.rule_id.startswith("CON")),
            )
    if args.format == "sarif":
        rendered = json.dumps(to_sarif(report), indent=2)
    elif args.format == "json":
        rendered = json.dumps(report.to_dict(), indent=2)
    else:
        rendered = report.render_text()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"lint report written to {args.out}")
    else:
        print(rendered)
    if report.has_errors:
        print(
            f"repro-alloc: lint found {len(report.errors)} error(s)",
            file=sys.stderr,
        )
        return 6
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.obs.log import configure_logging
    from repro.obs.metrics import Metrics, enable, get_metrics
    from repro.obs.trace import TraceBuffer, enable_trace, get_trace
    from repro.service import AllocationService, RetryPolicy
    from repro.service.httpd import ServiceHTTPServer

    # The daemon's telemetry plane is always on: /metrics scrapes the
    # process-wide registry and /jobs/<id>/trace needs the trace ring.
    # --metrics/--trace (handled in main()) may already have enabled
    # them; don't clobber those registries.
    if not get_metrics().enabled:
        enable(Metrics())
    if not get_trace().enabled:
        enable_trace(TraceBuffer())
    if not args.no_log:
        configure_logging(
            args.log if args.log else sys.stderr, level=args.log_level
        )

    # a stale endpoint.json (a previous daemon was SIGKILLed before it
    # could clean up) must never advertise a dead address: remove it
    # before binding, re-announce once we actually listen
    endpoint_path = os.path.join(args.spool, "endpoint.json")
    try:
        os.unlink(endpoint_path)
    except OSError:
        pass
    service = AllocationService(
        args.spool,
        workers=args.workers,
        max_queue_depth=args.max_queue,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        allocator=ResourceAllocator(backend=args.backend),
        deadline=args.deadline,
        max_states=args.max_states,
        isolation=args.isolation,
        memory_mb=args.memory_mb,
        cpu_seconds=args.cpu_seconds,
        stall_timeout=args.stall_timeout,
    ).start()
    server = ServiceHTTPServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    # announce the bound endpoint (port 0 binds ephemerally) where
    # clients and tests can discover it: atomic, like everything else
    temp = endpoint_path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump({"host": host, "port": port, "url": url}, handle)
    os.replace(temp, endpoint_path)

    def _graceful(signum: int, frame: object) -> None:
        server.request_drain()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    print(
        f"repro-alloc: serving on {url} (spool {args.spool}, "
        f"{args.isolation} isolation); SIGTERM drains gracefully",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        # a clean shutdown retracts the announcement, so a later
        # `submit --spool` fails fast instead of dialling a dead port
        try:
            os.unlink(endpoint_path)
        except OSError:
            pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import os
    import time
    import urllib.error
    import urllib.request

    with open(args.application) as handle:
        application = json.load(handle)
    with open(args.architecture) as handle:
        architecture = json.load(handle)
    if args.server:
        url = args.server.rstrip("/")
    else:
        if not args.spool:
            raise ValueError("submit needs --server URL or --spool DIR")
        endpoint_path = os.path.join(args.spool, "endpoint.json")
        try:
            with open(endpoint_path) as handle:
                url = json.load(handle)["url"].rstrip("/")
        except FileNotFoundError:
            print(
                f"repro-alloc: no endpoint.json in {args.spool} — the "
                "daemon is not running (it retracts the announcement "
                "on shutdown); start it with `repro-alloc serve "
                f"--spool {args.spool}`",
                file=sys.stderr,
            )
            return 2
    body = {"application": application, "architecture": architecture}
    if args.deadline is not None:
        body["deadline"] = args.deadline
    if args.max_states is not None:
        body["max_states"] = args.max_states
    if args.memory_mb is not None:
        body["memory_mb"] = args.memory_mb
    if args.cpu_seconds is not None:
        body["cpu_seconds"] = args.cpu_seconds
    payload = json.dumps(body).encode("utf-8")
    waited = 0.0
    while True:
        request = urllib.request.Request(
            f"{url}/jobs",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                accepted = json.loads(response.read())
            break
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read()).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                pass
            if error.code == 429:
                # the service advertises how long to back off; with
                # --wait we honour it (bounded by --timeout) instead
                # of giving up on the first rejection
                try:
                    retry_after = float(
                        error.headers.get("Retry-After", "1")
                    )
                except (TypeError, ValueError):
                    retry_after = 1.0
                retry_after = max(0.1, retry_after)
                if args.wait and waited + retry_after <= args.timeout:
                    print(
                        "repro-alloc: service overloaded; retrying in "
                        f"{retry_after:g}s (Retry-After)",
                        file=sys.stderr,
                    )
                    time.sleep(retry_after)
                    waited += retry_after
                    continue
                print(
                    f"repro-alloc: service overloaded: {detail or error}",
                    file=sys.stderr,
                )
                return HTTP_EXIT_MAP[429]
            print(
                f"repro-alloc: submission rejected ({error.code}): "
                f"{detail or error}",
                file=sys.stderr,
            )
            return HTTP_EXIT_MAP.get(error.code, HTTP_EXIT_MAP[400])
    job_id = accepted["id"]
    if not args.wait:
        print(job_id)
        return 0
    waited = 0.0
    while waited < args.timeout:
        with urllib.request.urlopen(
            f"{url}/jobs/{job_id}", timeout=30
        ) as response:
            record = json.loads(response.read())
        if record["state"] in (
            "certified",
            "degraded",
            "failed",
            "quarantined",
        ):
            json.dump(record, sys.stdout, indent=2)
            print()
            return 0 if record["state"] in ("certified", "degraded") else 2
        time.sleep(args.poll_interval)
        waited += args.poll_interval
    print(
        f"repro-alloc: job {job_id} not finished after {args.timeout:g}s "
        "(it keeps running; query the service for its state)",
        file=sys.stderr,
    )
    return 2


def _service_url(args: argparse.Namespace) -> Optional[str]:
    """Resolve the daemon's base URL from --server or --spool."""
    import os

    if args.server:
        return args.server.rstrip("/")
    if not args.spool:
        raise ValueError("need --server URL or --spool DIR")
    endpoint_path = os.path.join(args.spool, "endpoint.json")
    try:
        with open(endpoint_path) as handle:
            return json.load(handle)["url"].rstrip("/")
    except (OSError, json.JSONDecodeError, KeyError):
        print(
            f"repro-alloc: no endpoint.json in {args.spool} — the "
            "daemon is not running (it retracts the announcement on "
            "shutdown); start it with `repro-alloc serve --spool "
            f"{args.spool}`",
            file=sys.stderr,
        )
        return None


def _counter(samples: dict, name: str) -> int:
    """A summed counter across the parent and harvested-child families."""
    return int(
        samples.get(f"repro_{name}_total", 0)
        + samples.get(f"repro_child_{name}_total", 0)
    )


def _render_status(url: str, health: dict, samples: dict) -> str:
    lines = [
        f"repro-alloc service @ {url} — health {health.get('health', '?')}"
        + ("" if health.get("accepting") else " (not accepting)")
    ]
    jobs = health.get("jobs", {})
    lines.append(
        f"queue: {health.get('queue_depth', 0)} queued · "
        f"{health.get('backing_off', 0)} backing off · "
        f"{health.get('active', 0)} running "
        f"(max {health.get('max_queue_depth', '?')}) · "
        f"{health.get('workers', '?')} workers, "
        f"{health.get('isolation', '?')} isolation"
    )
    hits = _counter(samples, "service_cache_hit")
    misses = _counter(samples, "service_cache_miss")
    lookups = hits + misses
    rate = f"{100.0 * hits / lookups:.1f}%" if lookups else "n/a"
    lines.append(
        f"cache: {hits} hits / {misses} misses (hit rate {rate})"
    )
    lines.append(
        "verdicts: "
        + " · ".join(
            f"{state} {jobs.get(state, 0)}"
            for state in (
                "certified",
                "degraded",
                "failed",
                "quarantined",
                "queued",
                "running",
            )
        )
    )
    spawned = _counter(samples, "sandbox_spawned")
    if spawned:
        lines.append(
            f"sandbox: {spawned} spawned · "
            f"{_counter(samples, 'sandbox_completed')} completed · "
            f"{_counter(samples, 'sandbox_oom')} oom · "
            f"{_counter(samples, 'sandbox_stalled')} stalled · "
            f"{_counter(samples, 'sandbox_cpu_exceeded')} cpu · "
            f"{_counter(samples, 'sandbox_crashed')} crashed"
        )
    crash_loop = health.get("crash_loop", {})
    lines.append(
        f"crash loop: {crash_loop.get('recent_quarantines', 0)}/"
        f"{crash_loop.get('window', '?')} recent quarantines "
        f"(threshold {crash_loop.get('threshold', '?')})"
    )
    running = health.get("running") or []
    if running:
        lines.append("running jobs:")
        for child in running:
            age = child.get("heartbeat_age_seconds")
            states = child.get("states")
            rss = child.get("rss_kb")
            lines.append(
                f"  {child.get('job')} a{child.get('attempt')} "
                f"pid {child.get('pid')}: "
                f"beat age {f'{age:g}s' if age is not None else 'n/a'}"
                + (f", {states} states" if states is not None else "")
                + (f", rss {rss} KB" if rss is not None else "")
            )
    return "\n".join(lines)


def _cmd_status(args: argparse.Namespace) -> int:
    import time
    import urllib.error
    import urllib.request

    from repro.obs.prom import parse_exposition

    url = _service_url(args)
    if url is None:
        return 2

    def fetch() -> tuple:
        with urllib.request.urlopen(f"{url}/health", timeout=10) as resp:
            health = json.loads(resp.read())
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            samples = parse_exposition(resp.read().decode("utf-8"))
        return health, samples

    while True:
        try:
            health, samples = fetch()
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as err:
            print(
                f"repro-alloc: cannot reach service at {url}: {err}",
                file=sys.stderr,
            )
            return 2
        view = _render_status(url, health, samples)
        if args.watch and sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
        print(view)
        if not args.watch:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(max(0.1, args.watch))
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-alloc",
        description="SDFG resource allocation (DAC 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # shared by every sub-command: dump the metrics snapshot of the run
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics",
        metavar="PATH",
        help="collect instrumentation during the run and write the "
        "JSON snapshot to PATH",
    )
    common.add_argument(
        "--trace",
        metavar="PATH",
        help="record event-level tracing during the run and write a "
        "Chrome/Perfetto trace file to PATH",
    )
    _add_robustness_flags(common)

    analyse = sub.add_parser(
        "analyse", help="compute SDFG throughput", parents=[common]
    )
    analyse.add_argument("graph", help="path to a graph JSON file")
    analyse.add_argument(
        "--no-auto-concurrency",
        action="store_true",
        help="limit every actor to one concurrent firing",
    )
    analyse.set_defaults(func=_cmd_analyse)

    generate = sub.add_parser(
        "generate", help="emit benchmark graphs as JSON", parents=[common]
    )
    generate.add_argument(
        "--set",
        default="mixed",
        choices=["processing", "memory", "communication", "mixed"],
    )
    generate.add_argument("-n", "--count", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    allocate = sub.add_parser(
        "allocate",
        help="allocate a generated set until failure",
        parents=[common],
    )
    allocate.add_argument(
        "--set",
        default="mixed",
        choices=["processing", "memory", "communication", "mixed"],
    )
    allocate.add_argument("-n", "--count", type=int, default=20)
    allocate.add_argument("--seed", type=int, default=0)
    allocate.add_argument(
        "--architecture",
        type=int,
        default=0,
        choices=[0, 1, 2],
        help="benchmark architecture variant",
    )
    allocate.add_argument(
        "--weights",
        type=float,
        nargs=3,
        default=list(CostWeights.default().as_tuple()),
        metavar=("C1", "C2", "C3"),
        help="tile cost weights (processing, memory, communication)",
    )
    _add_backend_flag(allocate)
    allocate.add_argument(
        "--degrade",
        action="store_true",
        help="on budget exhaustion or state-space explosion, retry with "
        "cheaper strategy knobs and fall back to the conservative TDMA "
        "baseline instead of failing",
    )
    allocate.add_argument(
        "--save-allocation",
        metavar="PATH",
        help="write the committed allocations as a verifiable bundle "
        "(see 'repro-alloc verify')",
    )
    allocate.set_defaults(func=_cmd_allocate)

    example = sub.add_parser(
        "example", help="run the paper's running example", parents=[common]
    )
    example.add_argument(
        "--weights",
        type=float,
        nargs=3,
        default=[1.0, 1.0, 1.0],
        metavar=("C1", "C2", "C3"),
    )
    _add_backend_flag(example)
    example.add_argument(
        "--save-allocation",
        metavar="PATH",
        help="write the allocation as a verifiable bundle "
        "(see 'repro-alloc verify')",
    )
    example.set_defaults(func=_cmd_example)

    allocate_file = sub.add_parser(
        "allocate-file",
        help="allocate one application JSON onto an architecture JSON",
        parents=[common],
    )
    allocate_file.add_argument("application", help="application JSON file")
    allocate_file.add_argument("architecture", help="architecture JSON file")
    allocate_file.add_argument(
        "--weights",
        type=float,
        nargs=3,
        default=list(CostWeights.default().as_tuple()),
        metavar=("C1", "C2", "C3"),
    )
    _add_backend_flag(allocate_file)
    allocate_file.add_argument(
        "--commit",
        action="store_true",
        help="write the occupied architecture back to the file",
    )
    allocate_file.set_defaults(func=_cmd_allocate_file)

    dot = sub.add_parser(
        "dot", help="emit a Graphviz rendering of a graph", parents=[common]
    )
    dot.add_argument("graph", help="path to a graph JSON file")
    dot.set_defaults(func=_cmd_dot)

    trace = sub.add_parser(
        "trace",
        help="Gantt trace of the paper example's allocation",
        parents=[common],
    )
    trace.add_argument(
        "--weights",
        type=float,
        nargs=3,
        default=[1.0, 1.0, 1.0],
        metavar=("C1", "C2", "C3"),
    )
    trace.add_argument("--width", type=int, default=72)
    trace.add_argument(
        "--vcd", metavar="PATH", help="also write an IEEE-1364 VCD waveform"
    )
    trace.set_defaults(func=_cmd_trace)

    dimension = sub.add_parser(
        "dimension",
        help="smallest mesh hosting a generated set",
        parents=[common],
    )
    dimension.add_argument(
        "--set",
        default="mixed",
        choices=["processing", "memory", "communication", "mixed"],
    )
    dimension.add_argument("-n", "--count", type=int, default=3)
    dimension.add_argument("--seed", type=int, default=0)
    dimension.add_argument("--max-tiles", type=int, default=12)
    dimension.set_defaults(func=_cmd_dimension)

    verify = sub.add_parser(
        "verify",
        help="independently certify a saved allocation bundle",
        description="Replay the periodic-phase certificates and re-sum "
        "the resource claims of a bundle written with --save-allocation. "
        "Exits 0 when every allocation is certified (or is a declared "
        "sound lower bound), 4 when any allocation is refuted.",
        parents=[common],
    )
    verify.add_argument("bundle", help="allocation bundle JSON file")
    verify.set_defaults(func=_cmd_verify)

    profile = sub.add_parser(
        "profile",
        help="instrumented run emitting a JSON metrics report",
        description="Run one workload with the repro.obs instrumentation "
        "enabled and emit a JSON report (result summary + metrics "
        "snapshot).  Profiles a graph JSON when given, the generated "
        "benchmark flow with --flow, or the paper's running example "
        "otherwise.",
    )
    profile.add_argument(
        "graph",
        nargs="?",
        help="graph JSON file to analyse (omit for --flow or the example)",
    )
    profile.add_argument(
        "--flow",
        action="store_true",
        help="profile an allocate-until-failure run over a generated set",
    )
    profile.add_argument(
        "--set",
        default="mixed",
        choices=["processing", "memory", "communication", "mixed"],
    )
    profile.add_argument("-n", "--count", type=int, default=5)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--architecture", type=int, default=0, choices=[0, 1, 2]
    )
    profile.add_argument(
        "--weights",
        type=float,
        nargs=3,
        default=list(CostWeights.default().as_tuple()),
        metavar=("C1", "C2", "C3"),
    )
    profile.add_argument(
        "--out", metavar="PATH", help="write the JSON report to PATH"
    )
    profile.add_argument(
        "--summary",
        action="store_true",
        help="print a human-readable summary instead of the JSON report",
    )
    profile.add_argument(
        "--trace",
        metavar="PATH",
        help="also record event-level tracing and write a "
        "Chrome/Perfetto trace file to PATH",
    )
    _add_robustness_flags(profile)
    profile.set_defaults(func=_cmd_profile)

    lint = sub.add_parser(
        "lint",
        help="static diagnostics over graphs, applications and bundles",
        description="Run the rule-based static analyser (docs/ANALYSIS.md) "
        "over JSON models: SDF/CSDF graphs, applications, architectures "
        "and allocation bundles (kind is sniffed per document).  Exits 0 "
        "when no error-severity finding survives filtering, 6 otherwise.",
        parents=[common],
    )
    lint.add_argument(
        "inputs",
        nargs="*",
        metavar="MODEL",
        help="model JSON files (graph, application, architecture, bundle, "
        "or a list of graphs)",
    )
    lint.add_argument(
        "--source",
        action="store_true",
        help="also run the concurrency rules (CON001-CON004, see "
        "docs/ANALYSIS.md) over the repro package's own source",
    )
    lint.add_argument(
        "--architecture",
        metavar="PATH",
        help="architecture JSON to lint and to enable platform-aware "
        "application rules (APP003/APP004)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif"],
        help="output format (SARIF 2.1.0 for code-review tooling)",
    )
    lint.add_argument(
        "--out", metavar="PATH", help="write the report to PATH instead of stdout"
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="PREFIX",
        help="keep only findings whose rule ID starts with PREFIX "
        "(repeatable, e.g. --select SDF --select APP0)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="PREFIX",
        help="drop findings whose rule ID starts with PREFIX (repeatable)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings whose fingerprints appear in this "
        "baseline file (see --update-baseline)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings' fingerprints to --baseline "
        "and exit 0 (accepting today's findings as the baseline)",
    )
    lint.set_defaults(func=_cmd_lint)

    bench = sub.add_parser(
        "bench",
        help="run curated perf workloads; compare against a baseline",
        description="Run the curated benchmark workloads (paper example, "
        "classic DSP models, H.263 decoder, seeded random flow) with "
        "instrumentation on and write a schema-versioned BENCH_<label>"
        ".json report.  With --compare, check the fresh run against a "
        "previous report: deterministic regressions (more states, more "
        "throughput checks, changed results) exit with status 5; wall-"
        "time drift only warns unless --strict-time.",
    )
    bench.add_argument(
        "--label",
        default="run",
        help="report label; the default output file is BENCH_<label>.json",
    )
    bench.add_argument(
        "--full",
        action="store_true",
        help="run the fuller (slower) workload variants",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out",
        metavar="PATH",
        help="write the report here instead of BENCH_<label>.json",
    )
    bench.add_argument(
        "--compare",
        metavar="PATH",
        help="check this run against a previous bench report; exit 5 on "
        "regression",
    )
    bench.add_argument(
        "--max-time-ratio",
        type=float,
        default=2.0,
        metavar="RATIO",
        help="wall-time slack factor for --compare (default 2.0)",
    )
    bench.add_argument(
        "--strict-time",
        action="store_true",
        help="treat wall-time drift over the threshold as a hard "
        "regression instead of a warning",
    )
    bench.add_argument(
        "--debug",
        action="store_true",
        help="show full tracebacks instead of one-line diagnostics",
    )
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant allocation service daemon",
        description="Long-running allocation-as-a-service daemon: a "
        "durable job queue with supervised workers, retry/backoff, "
        "admission control, checkpointed graceful drain (SIGTERM) and "
        "a verified result cache.  See docs/SERVICE.md.",
        parents=[common],
    )
    serve.add_argument(
        "--spool",
        required=True,
        metavar="DIR",
        help="spool directory holding the job journal, engine "
        "checkpoints and result cache (created if missing)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8571,
        help="TCP port (0 binds an ephemeral port; the bound endpoint "
        "is announced in <spool>/endpoint.json)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker threads"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="bounded queue depth; submissions beyond it are rejected "
        "with HTTP 429 (client exit code 7)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts before a repeatedly crashing job is quarantined",
    )
    serve.add_argument(
        "--isolation",
        choices=("thread", "process"),
        default="process",
        help="run each allocation attempt in a worker thread or in a "
        "dedicated sandboxed subprocess with rlimit caps and a "
        "liveness watchdog (default: process; see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--memory-mb",
        type=int,
        metavar="MB",
        help="default per-job address-space cap for sandboxed attempts "
        "(process isolation; per-job 'memory_mb' overrides it)",
    )
    serve.add_argument(
        "--cpu-seconds",
        type=float,
        metavar="SECONDS",
        help="default per-job CPU-time cap for sandboxed attempts "
        "(process isolation; per-job 'cpu_seconds' overrides it)",
    )
    serve.add_argument(
        "--stall-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="watchdog kills a sandboxed child whose heartbeat goes "
        "silent for this long",
    )
    serve.add_argument(
        "--log",
        metavar="PATH",
        help="write structured JSON-lines logs to PATH (default: "
        "stderr); one record per line with job/attempt correlation "
        "fields",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum severity of emitted log records (default: info; "
        "debug includes HTTP access lines and journal writes)",
    )
    serve.add_argument(
        "--no-log",
        action="store_true",
        help="disable structured logging entirely",
    )
    _add_backend_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    status = sub.add_parser(
        "status",
        help="one-screen live view of a running allocation service",
        description="Poll /health, /jobs and /metrics of a repro-alloc "
        "serve daemon and render queue pressure, running jobs "
        "(heartbeat age, states charged), cache efficacy, verdict mix "
        "and crash-loop state on one screen.  With --watch the view "
        "refreshes until interrupted.",
        parents=[common],
    )
    status.add_argument(
        "--server",
        metavar="URL",
        help="service base URL (e.g. http://127.0.0.1:8571)",
    )
    status.add_argument(
        "--spool",
        metavar="DIR",
        help="discover the endpoint from DIR/endpoint.json instead of "
        "--server",
    )
    status.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        help="refresh every SECONDS until interrupted (default: render "
        "once and exit)",
    )
    status.set_defaults(func=_cmd_status)

    submit = sub.add_parser(
        "submit",
        help="submit one job to a running allocation service",
        description="POST an (application, architecture) pair to a "
        "repro-alloc serve daemon.  Prints the job id (or, with "
        "--wait, the finished job record).  Exit codes: 0 accepted/"
        "finished soundly, 7 service overloaded, 2 anything else.",
        parents=[common],
    )
    submit.add_argument("application", help="application JSON file")
    submit.add_argument("architecture", help="architecture JSON file")
    submit.add_argument(
        "--server",
        metavar="URL",
        help="service base URL (e.g. http://127.0.0.1:8571)",
    )
    submit.add_argument(
        "--spool",
        metavar="DIR",
        help="discover the endpoint from DIR/endpoint.json instead of "
        "--server",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job is terminal and print its record",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="give up waiting after this long (the job keeps running)",
    )
    submit.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="polling period for --wait",
    )
    submit.add_argument(
        "--memory-mb",
        type=int,
        metavar="MB",
        help="address-space cap for this job's sandboxed attempts",
    )
    submit.add_argument(
        "--cpu-seconds",
        type=float,
        metavar="SECONDS",
        help="CPU-time cap for this job's sandboxed attempts",
    )
    submit.set_defaults(func=_cmd_submit)
    return parser


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["greedy", "exact"],
        default="greedy",
        help="allocation strategy: the paper's greedy heuristic "
        "(default) or the branch-and-bound exact search "
        "(provably cheapest, combinatorial cost; see docs/EXACT.md)",
    )


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for the run; exhausting it exits with "
        "status 3",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        metavar="N",
        help="state budget for the exploration engines (summed across "
        "all engine calls); exhausting it exits with status 3",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="on budget exhaustion, persist the interrupted exploration "
        "frontier to PATH so the run can be continued with --resume",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        help="continue a run from a checkpoint written via --checkpoint",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="show full tracebacks instead of one-line diagnostics",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    debug = getattr(args, "debug", False)
    deadline = getattr(args, "deadline", None)
    max_states = getattr(args, "max_states", None)
    args.budget = (
        Budget(deadline=deadline, max_states=max_states)
        if deadline is not None or max_states is not None
        else None
    )
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    try:
        with ExitStack() as stack:
            metrics = (
                stack.enter_context(collecting()) if metrics_path else None
            )
            trace = stack.enter_context(tracing()) if trace_path else None
            try:
                return args.func(args)
            finally:
                # evidence survives failed runs: the snapshot and trace
                # are written before any exception reaches the handlers
                if metrics is not None:
                    JsonSink(metrics_path).emit(metrics.snapshot())
                if trace is not None:
                    write_chrome_trace(trace_path, trace)
    except BudgetExceededError as error:
        if debug:
            raise
        checkpoint_path = getattr(args, "checkpoint", None)
        payload = (error.partial or {}).get("checkpoint")
        if checkpoint_path and payload:
            from repro.resilience.checkpoint import write_checkpoint

            write_checkpoint(checkpoint_path, payload)
            print(
                f"repro-alloc: checkpoint written to {checkpoint_path} "
                f"(continue with --resume {checkpoint_path})",
                file=sys.stderr,
            )
        print(f"repro-alloc: budget exhausted: {error}", file=sys.stderr)
        return 3
    except StateSpaceExplosionError as error:
        if debug:
            raise
        print(f"repro-alloc: budget exhausted: {error}", file=sys.stderr)
        return 3
    except AllocationError as error:
        if debug:
            raise
        if isinstance(error.__cause__, StateSpaceExplosionError):
            print(f"repro-alloc: budget exhausted: {error}", file=sys.stderr)
            return 3
        print(f"repro-alloc: error: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        if debug:
            raise
        print(f"repro-alloc: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
