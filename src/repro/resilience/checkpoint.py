"""Crash-safe checkpointing of interrupted explorations.

When a :class:`~repro.resilience.budget.Budget` fires inside the
state-space driver, the raised ``BudgetExceededError`` carries
``error.partial["checkpoint"]``: a JSON-ready payload holding the graph,
the rates of the components finished so far, and the interrupted
engine's full frontier (visited-state map plus current state).  This
module persists that payload and turns it back into a running analysis:

* :func:`write_checkpoint` / :func:`read_checkpoint` — atomic,
  versioned JSON files (write-to-temp + ``os.replace``, so a crash or
  injected fault mid-write never leaves a truncated checkpoint behind);
* :func:`resume_from_checkpoint` — rebuilds the graph and continues the
  exploration **bit-identically**: the resumed
  :class:`~repro.throughput.state_space.ThroughputResult` has the same
  iteration rate, per-SCC rates, certificates and ``states_explored``
  as an uninterrupted run.

Flow-level checkpoints (kind ``"flow"``, written by
:func:`repro.core.flow.allocate_until_failure`) record committed
allocations and are resumed by the flow itself, not by this module.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Union

from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget
from repro.resilience.faults import fault_point
from repro.sdf.serialization import SerializationError

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(SerializationError):
    """A checkpoint file is missing, malformed or of an unknown version."""


def write_checkpoint(path: str, data: Dict[str, Any]) -> str:
    """Atomically persist a checkpoint payload as JSON; returns ``path``.

    The payload is written to ``path + ".tmp"`` first and renamed into
    place, so readers only ever observe a complete file.  The payload
    must carry the standard envelope (``format``/``version``); payloads
    taken from ``error.partial["checkpoint"]`` already do.
    """
    if data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"refusing to write payload without the {CHECKPOINT_FORMAT!r} "
            "envelope",
            source=path,
            field="format",
        )
    text = json.dumps(data, indent=2)
    temp = path + ".tmp"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
            # after the bytes are durable but before the rename: a fault
            # here must leave `path` untouched (tests/test_faults.py)
            fault_point("checkpoint.write", path=path)
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    obs = get_metrics()
    obs.counter("checkpoint.writes")
    obs.counter("checkpoint.bytes", len(text))
    tr = get_trace()
    if tr.enabled:
        tr.instant(
            "checkpoint",
            "write",
            path=path,
            bytes=len(text),
            kind=data.get("kind"),
        )
    return path


def read_checkpoint(path: str) -> Dict[str, Any]:
    """Load and validate a checkpoint file written by :func:`write_checkpoint`."""
    fault_point("checkpoint.read", path=path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint: {error}", source=path
        ) from error
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        # truncated mid-write, or overwritten with binary garbage —
        # either way a typed error with file context, never a bare
        # decode exception (tests/test_checkpoint.py corrupts real
        # checkpoints to pin this down)
        raise CheckpointError(
            f"checkpoint is truncated or corrupted: {error}", source=path
        ) from error
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            "not a repro checkpoint file", source=path, field="format"
        )
    if data.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {data.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})",
            source=path,
            field="version",
        )
    get_metrics().counter("checkpoint.reads")
    tr = get_trace()
    if tr.enabled:
        tr.instant("checkpoint", "read", path=path, kind=data.get("kind"))
    return data


def resume_from_checkpoint(
    checkpoint: Union[str, Dict[str, Any]],
    budget: Optional[Budget] = None,
    max_states: Optional[int] = None,
):
    """Continue an interrupted state-space analysis bit-identically.

    ``checkpoint`` is a path to a checkpoint file or an already-loaded
    payload (e.g. ``error.partial["checkpoint"]``).  ``budget`` bounds
    the *remaining* exploration (pass a fresh :class:`Budget`; the spent
    one is exhausted by definition); ``max_states`` overrides the cap
    recorded in the checkpoint.  Returns the completed
    :class:`~repro.throughput.state_space.ThroughputResult` for
    ``"state-space"`` checkpoints and the completed
    :class:`~repro.throughput.constrained.ConstrainedThroughputResult`
    for ``"constrained"`` ones.
    """
    # deferred imports: this module is a resilience leaf, the throughput
    # engines import the budget/fault siblings at module load
    from repro.sdf.serialization import graph_from_dict
    from repro.throughput.constrained import (
        StaticOrderSchedule,
        TileConstraints,
        constrained_throughput,
    )
    from repro.throughput.state_space import throughput

    if isinstance(checkpoint, str):
        checkpoint = read_checkpoint(checkpoint)
    kind = checkpoint.get("kind")
    if kind == "flow":
        raise CheckpointError(
            "flow checkpoints are resumed by "
            "repro.core.flow.allocate_until_failure(resume=...), not by "
            "resume_from_checkpoint",
            field="kind",
        )
    if kind not in ("state-space", "constrained"):
        raise CheckpointError(
            f"unknown checkpoint kind {kind!r}", field="kind"
        )
    required = (
        ("graph", "max_states", "tiles")
        if kind == "constrained"
        else ("graph", "max_states", "execution_times", "auto_concurrency")
    )
    for key in required:
        # a checkpoint that passed the envelope check can still have
        # been truncated by a partial copy or hand-edited: surface a
        # typed error with the missing field, not a KeyError
        if key not in checkpoint:
            raise CheckpointError(
                f"{kind} checkpoint is missing required field {key!r} "
                "(truncated or hand-edited?)",
                field=key,
            )
    graph = graph_from_dict(checkpoint["graph"])
    cap = max_states if max_states is not None else checkpoint["max_states"]
    get_metrics().counter("checkpoint.resumes")
    if kind == "constrained":
        for index, entry in enumerate(checkpoint["tiles"]):
            for key in ("name", "wheel", "slice_size", "periodic"):
                if key not in entry:
                    raise CheckpointError(
                        f"constrained checkpoint tile #{index} is missing "
                        f"required field {key!r}",
                        field=f"tiles[{index}].{key}",
                    )
        tiles = [
            TileConstraints(
                name=entry["name"],
                wheel=entry["wheel"],
                slice_size=entry["slice_size"],
                slice_start=entry.get("slice_start", 0),
                schedule=StaticOrderSchedule(
                    periodic=tuple(entry["periodic"]),
                    transient=tuple(entry.get("transient", ())),
                ),
            )
            for entry in checkpoint["tiles"]
        ]
        return constrained_throughput(
            graph,
            tiles,
            max_states=cap,
            budget=budget,
            resume=checkpoint,
        )
    return throughput(
        graph,
        execution_times=checkpoint["execution_times"],
        auto_concurrency=checkpoint["auto_concurrency"],
        max_states=cap,
        budget=budget,
        resume=checkpoint,
    )
