"""Deterministic, seeded fault injection for the allocation stack.

The resilience layer's promise — every degradation rung is reachable
and a mid-commit failure never corrupts the architecture — is only
testable when the failure modes can be provoked on demand.  The engines
and the commit path therefore call :func:`fault_point` at well-defined
instants; the call is a no-op (one module-global ``is None`` test)
unless a :class:`FaultInjector` is active.

Fault points currently wired in:

========================  ====================================================
``state_space.execute``   start of one self-timed execution
``constrained.run``       start of one constrained (TDMA/static-order) run
``scheduling.build``      start of one list-scheduling execution
``commit.apply``          before applying one tile's claim during
                          ``ResourceReservation.commit`` (context: ``tile``,
                          ``index``)
``checkpoint.write``      after the checkpoint temp file is written but
                          before the atomic rename (context: ``path``) —
                          a fault here must never leave a truncated
                          checkpoint behind
``checkpoint.read``       before reading a checkpoint file (context:
                          ``path``)
``service.journal.write``  after a job record's temp file is durable but
                          before the atomic rename (context: ``job``,
                          ``state``) — a fault here must never leave a
                          truncated record behind
``service.worker.run``    start of one worker attempt at a job (context:
                          ``job``, ``attempt``)
``service.cache.read``    before reading a result-cache entry (context:
                          ``key``)
``service.sandbox.spawn``  before spawning one sandboxed worker child
                          (context: ``job``, ``attempt``)
``service.sandbox.heartbeat``  before the watchdog reads a child's
                          heartbeat file (context: ``job``,
                          ``attempt``) — an injected fault blinds the
                          watchdog, indistinguishable from a child
                          that stopped beating
========================  ====================================================

Injection is deterministic by default (count-based: skip the first
``after`` matching visits, then fail the next ``times``); a seeded
``probability`` mode exists for randomised soak tests.  Every injected
fault is recorded on ``injector.injected`` so tests can assert exactly
what fired.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


#: Every fault point wired into the codebase, in the order of the table
#: above.  ``tools/check_invariants.py`` cross-checks that each
#: ``fault_point("...")`` call site in ``src/`` names a registered
#: point, so a typo'd hook cannot silently never fire.
KNOWN_FAULT_POINTS: Tuple[str, ...] = (
    "state_space.execute",
    "constrained.run",
    "scheduling.build",
    "commit.apply",
    "checkpoint.write",
    "checkpoint.read",
    "exact.search",
    "service.journal.write",
    "service.worker.run",
    "service.cache.read",
    "service.sandbox.spawn",
    "service.sandbox.heartbeat",
)


class InjectedFaultError(RuntimeError):
    """A generic runtime fault raised by the injector (``error="runtime"``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    ``point`` matches fault points by prefix (``""`` matches all).
    ``error`` selects what is raised:

    * ``"explosion"`` — :class:`~repro.throughput.state_space.StateSpaceExplosionError`
      (the engine's own give-up signal),
    * ``"deadline"`` — :class:`~repro.resilience.budget.BudgetExceededError`
      with ``reason="deadline"`` (a simulated overrun),
    * ``"runtime"`` — :class:`InjectedFaultError` (an unexpected crash,
      e.g. mid-commit).

    Count semantics: the first ``after`` matching visits pass through,
    the following ``times`` visits raise (``times=None``: every later
    visit raises).  With ``probability`` set, each otherwise-eligible
    visit raises only with that (seeded) probability.
    """

    point: str
    error: str = "explosion"
    times: Optional[int] = 1
    after: int = 0
    probability: Optional[float] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.error not in ("explosion", "deadline", "runtime"):
            raise ValueError(f"unknown fault error kind {self.error!r}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0 or None")


@dataclass
class FaultInjector:
    """Context manager activating a set of :class:`FaultSpec` rules.

    Deterministic given its specs and ``seed``.  Not reentrant: nesting
    two injectors is a usage error and raises immediately.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: every visit of any fault point: (point, context)
    visits: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    #: every fault actually raised: (point, error kind, context)
    injected: List[Tuple[str, str, Dict[str, Any]]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        self._random = random.Random(self.seed)
        self._matched = [0] * len(self.specs)

    def __enter__(self) -> "FaultInjector":
        global _active
        if _active is not None:
            raise RuntimeError("fault injectors do not nest")
        _active = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _active
        _active = None

    # -- the injection decision ---------------------------------------
    def visit(self, point: str, **context: Any) -> None:
        self.visits.append((point, context))
        for index, spec in enumerate(self.specs):
            if not point.startswith(spec.point):
                continue
            self._matched[index] += 1
            eligible = self._matched[index] - spec.after
            if eligible < 1:
                continue
            if spec.times is not None and eligible > spec.times:
                continue
            if (
                spec.probability is not None
                and self._random.random() >= spec.probability
            ):
                continue
            self.injected.append((point, spec.error, context))
            self._raise(spec, point)

    def _raise(self, spec: FaultSpec, point: str) -> None:
        message = spec.message or f"injected {spec.error} fault at {point!r}"
        if spec.error == "explosion":
            # deferred import: faults must stay importable before the
            # throughput package (state_space imports this module)
            from repro.throughput.state_space import StateSpaceExplosionError

            raise StateSpaceExplosionError(message)
        if spec.error == "deadline":
            from repro.resilience.budget import BudgetExceededError

            raise BudgetExceededError(
                message,
                reason="deadline",
                partial={"injected": True, "point": point},
            )
        raise InjectedFaultError(message)


_active: Optional[FaultInjector] = None


def fault_point(point: str, **context: Any) -> None:
    """Give an active injector the chance to fail at ``point``.

    No-op (one global load + ``is None`` test) when no injector is
    active, so the hooks can stay permanently wired into the engines.
    """
    if _active is not None:
        _active.visit(point, **context)


def active_injector() -> Optional[FaultInjector]:
    """The currently active injector (None outside injection blocks)."""
    return _active
