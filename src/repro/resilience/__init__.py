"""``repro.resilience`` — budgets, graceful degradation, fault injection.

Three cooperating pieces keep the allocation flow alive on pathological
inputs (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.resilience.budget` — a cooperative :class:`Budget`
  (wall-clock deadline + state budget + throughput-check budget)
  threaded through every exploration loop; breaches raise the typed
  :class:`BudgetExceededError` carrying partial progress.
* :mod:`repro.resilience.policy` — the degradation ladder: retry an
  allocation with progressively cheaper knobs and finally fall back to
  the conservative TDMA-inflation baseline, a sound lower throughput
  bound.
* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection harness proving every rung and the commit-rollback
  path are actually exercised.
* :mod:`repro.resilience.checkpoint` — crash-safe (atomic-rename)
  persistence of interrupted explorations and
  :func:`resume_from_checkpoint`, which continues them bit-identically
  (see ``docs/VERIFICATION.md``).

``budget`` and ``faults`` are dependency-free leaves (the throughput
engines import them); the ladder in ``policy`` and the checkpoint
module sit *above* the throughput engines and are loaded lazily to
keep the import graph acyclic.
"""

from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
    active_injector,
    fault_point,
)

__all__ = [
    "Budget",
    "BudgetExceededError",
    "CheckpointError",
    "DEFAULT_LADDER",
    "FaultInjector",
    "FaultSpec",
    "InjectedFaultError",
    "ResilientResult",
    "Rung",
    "active_injector",
    "fault_point",
    "read_checkpoint",
    "resilient_allocate",
    "resume_from_checkpoint",
    "tdma_baseline_allocate",
    "write_checkpoint",
]

_POLICY_EXPORTS = (
    "DEFAULT_LADDER",
    "ResilientResult",
    "Rung",
    "resilient_allocate",
    "tdma_baseline_allocate",
)

_CHECKPOINT_EXPORTS = (
    "CheckpointError",
    "read_checkpoint",
    "resume_from_checkpoint",
    "write_checkpoint",
)


def __getattr__(name: str):
    # Lazy so that `repro.throughput` can import the budget/fault leaves
    # while `policy` (which imports the strategy, which imports the
    # throughput engines) and `checkpoint` (which resumes through the
    # state-space driver) only load on first use.
    if name in _POLICY_EXPORTS:
        from repro.resilience import policy

        return getattr(policy, name)
    if name in _CHECKPOINT_EXPORTS:
        from repro.resilience import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
