"""``repro.resilience`` — budgets, graceful degradation, fault injection.

Three cooperating pieces keep the allocation flow alive on pathological
inputs (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.resilience.budget` — a cooperative :class:`Budget`
  (wall-clock deadline + state budget + throughput-check budget)
  threaded through every exploration loop; breaches raise the typed
  :class:`BudgetExceededError` carrying partial progress.
* :mod:`repro.resilience.policy` — the degradation ladder: retry an
  allocation with progressively cheaper knobs and finally fall back to
  the conservative TDMA-inflation baseline, a sound lower throughput
  bound.
* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection harness proving every rung and the commit-rollback
  path are actually exercised.

``budget`` and ``faults`` are dependency-free leaves (the throughput
engines import them); the ladder in ``policy`` sits *above* the
allocation strategy and is loaded lazily to keep the import graph
acyclic.
"""

from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
    active_injector,
    fault_point,
)

__all__ = [
    "Budget",
    "BudgetExceededError",
    "DEFAULT_LADDER",
    "FaultInjector",
    "FaultSpec",
    "InjectedFaultError",
    "ResilientResult",
    "Rung",
    "active_injector",
    "fault_point",
    "resilient_allocate",
    "tdma_baseline_allocate",
]

_POLICY_EXPORTS = (
    "DEFAULT_LADDER",
    "ResilientResult",
    "Rung",
    "resilient_allocate",
    "tdma_baseline_allocate",
)


def __getattr__(name: str):
    # Lazy so that `repro.throughput` can import the budget/fault leaves
    # while `policy` (which imports the strategy, which imports the
    # throughput engines) only loads on first use.
    if name in _POLICY_EXPORTS:
        from repro.resilience import policy

        return getattr(policy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
