"""Graceful degradation ladder for resource allocation.

When the exact strategy of :mod:`repro.core.strategy` runs out of its
:class:`~repro.resilience.budget.Budget` (wall-clock deadline, state
budget or throughput-check budget) or explodes the state space, the
right response is usually not a hard failure: the paper's strategy has
cheaper configurations (no rebinding pass, no slice refinement, a wider
early-stop band, a capped search) that find *sound but less efficient*
allocations, and in the limit the conservative TDMA model of reference
[4] (:mod:`repro.baselines.tdma_inflation`) gives a throughput bound
that never over-promises, at the cost of claiming whole remaining time
wheels.

:func:`resilient_allocate` walks such a ladder of rungs, retrying with
progressively cheaper knobs and falling back to the TDMA baseline last.
Every accepted rung yields a *valid* allocation — its guaranteed
throughput meets the application's constraint — only resource
efficiency degrades.  Genuine infeasibility (binding impossible,
constraint unreachable even with full wheels) is never masked: it
re-raises immediately instead of descending the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Allocation, SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.arch.architecture import ArchitectureGraph
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.core.binding import bind_application
from repro.core.constraints import reservation_for
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.throughput.state_space import StateSpaceExplosionError


@dataclass(frozen=True)
class Rung:
    """One configuration of the degradation ladder.

    ``None`` fields inherit the caller's allocator configuration; set
    fields override it for this rung only.  ``baseline=True`` marks the
    terminal TDMA-inflation rung, which ignores the other knobs and
    runs budget-exempt (it must be allowed to finish — it is the sound
    floor the ladder guarantees).
    """

    name: str
    optimise_binding: Optional[bool] = None
    refine_slices: Optional[bool] = None
    relaxation: Optional[float] = None
    max_states: Optional[int] = None
    baseline: bool = False

    def configure(self, allocator: ResourceAllocator) -> ResourceAllocator:
        """The caller's allocator with this rung's overrides applied."""
        overrides = {}
        if self.optimise_binding is not None:
            overrides["optimise_binding"] = self.optimise_binding
        if self.refine_slices is not None:
            overrides["refine_slices"] = self.refine_slices
        if self.relaxation is not None:
            overrides["relaxation"] = self.relaxation
        if self.max_states is not None:
            overrides["max_states"] = min(self.max_states, allocator.max_states)
        return replace(allocator, **overrides) if overrides else allocator


#: The default ladder: exact strategy, then the strategy without its two
#: optimisation passes and a wide early-stop band, then the same with a
#: hard state cap, and finally the conservative TDMA-inflation baseline.
DEFAULT_LADDER: Tuple[Rung, ...] = (
    Rung(name="exact"),
    Rung(
        name="no-refinement",
        optimise_binding=False,
        refine_slices=False,
        relaxation=0.5,
    ),
    Rung(
        name="capped-search",
        optimise_binding=False,
        refine_slices=False,
        relaxation=0.5,
        max_states=20000,
    ),
    Rung(name="tdma-baseline", baseline=True),
)


@dataclass
class ResilientResult:
    """An allocation plus the ladder position that produced it."""

    allocation: Allocation
    rung: str
    #: (rung name, reason) for every rung that was tried and gave up
    attempts: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.attempts)


def tdma_baseline_allocate(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    allocator: ResourceAllocator,
) -> Allocation:
    """Conservative fallback allocation via the [4] TDMA model.

    Binds greedily (no rebinding pass), hands every used tile its whole
    remaining time wheel and verifies the constraint under worst-case
    TDMA inflation — a single throughput check whose result is a sound
    lower bound on what the slices actually deliver (§8.2).  No
    static-order schedules are constructed: the inflated model assumes
    nothing about intra-tile ordering, so any work-conserving order is
    safe.  Raises :class:`AllocationError` when even this floor cannot
    meet the constraint (genuine infeasibility).
    """
    try:
        binding = bind_application(
            application,
            architecture,
            allocator.weights,
            optimise=False,
            cycle_limit=allocator.cycle_limit,
        )
        bag = build_binding_aware_graph(application, architecture, binding)
        slices = {
            name: architecture.tile(name).wheel_remaining
            for name in binding.used_tiles()
        }
        if any(value < 1 for value in slices.values()):
            raise AllocationError(
                f"no valid allocation for {application.name!r}: a used "
                "tile has no remaining time wheel"
            )
        result = tdma_inflated_throughput(
            bag, slices, max_states=allocator.max_states
        )
        achieved = result.of(application.output_actor)
    except AllocationError:
        raise
    except (RuntimeError, ValueError) as error:
        raise AllocationError(
            f"no valid allocation for {application.name!r}: {error}"
        ) from error
    if achieved < application.throughput_constraint:
        raise AllocationError(
            f"no valid allocation for {application.name!r}: TDMA "
            f"baseline reaches only {achieved} < constraint "
            f"{application.throughput_constraint}"
        )
    scheduling = SchedulingFunction()
    for name, size in slices.items():
        scheduling.set_slice(name, size)
    reservation = reservation_for(application, architecture, binding, slices)
    return Allocation(
        application=application,
        binding=binding,
        scheduling=scheduling,
        reservation=reservation,
        achieved_throughput=achieved,
        throughput_checks=1,
    )


def _degradable(error: AllocationError) -> bool:
    """Only search-resource failures may descend the ladder.

    A state-space explosion means the *analysis* gave up, not that the
    allocation is impossible — a cheaper rung may still succeed.  Every
    other cause (binding infeasible, deadlock, constraint unreachable)
    is a genuine negative answer and must surface unchanged.
    """
    return isinstance(error.__cause__, StateSpaceExplosionError)


def resilient_allocate(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    allocator: Optional[ResourceAllocator] = None,
    budget: Optional[Budget] = None,
    ladder: Sequence[Rung] = DEFAULT_LADDER,
    checkpoint_path: Optional[str] = None,
    preflight: bool = True,
) -> ResilientResult:
    """Allocate ``application``, degrading through ``ladder`` on trouble.

    With ``preflight=True`` (default) the static analyser
    (:func:`repro.analysis.preflight_check`) runs first; an
    error-severity finding proves no allocation can exist on any rung,
    so the ladder is not entered at all and a *non-degradable*
    :class:`AllocationError` is raised immediately.  Callers that
    already gated (like the flow) pass ``preflight=False``.

    Each non-baseline rung runs the full strategy with that rung's
    knobs under the shared ``budget``.  A rung is abandoned when it
    exhausts the budget or explodes the state space; once the deadline
    itself has expired, intermediate rungs are skipped and the ladder
    jumps straight to the budget-exempt baseline rung.  Non-degradable
    :class:`AllocationError` causes and unexpected exceptions propagate
    immediately.  Raises the last rung's error when the whole ladder
    fails (no baseline rung, or the baseline itself is infeasible), and
    :class:`ValueError` for an empty ladder.

    With ``checkpoint_path`` set, a rung that exhausts its budget
    mid-exploration persists the exploration frontier the error carries
    (``error.partial["checkpoint"]``) to that file before the ladder
    descends, so the interrupted search can later be resumed via
    :func:`repro.resilience.checkpoint.resume_from_checkpoint`.

    A *cancelled* budget (:meth:`Budget.cancel`, ``reason="cancelled"``)
    is different from an exhausted one: the caller asked for the work
    to stop, so the frontier is checkpointed and the error re-raised —
    the ladder never descends to the baseline over a cancellation.
    """
    if not ladder:
        raise ValueError("degradation ladder is empty")
    if preflight:
        from repro.analysis.engine import preflight_check

        gate = preflight_check(application, architecture)
        if gate.has_errors:
            # deliberately no StateSpaceExplosionError cause: the gate's
            # verdict is a genuine negative answer, so _degradable() is
            # False and no caller descends the ladder over it
            raise AllocationError(
                f"statically infeasible allocation for "
                f"{application.name!r}: {gate.summary()}"
            )
    if allocator is None:
        allocator = ResourceAllocator()
    if budget is not None:
        budget.start()

    obs = get_metrics()
    tr = get_trace()
    attempts: List[Tuple[str, str]] = []
    for position, rung in enumerate(ladder):
        if rung.baseline:
            allocation = tdma_baseline_allocate(
                application, architecture, allocator
            )
            if obs.enabled and attempts:
                obs.counter("resilience.degraded")
                obs.gauge("resilience.rung", position)
            if tr.enabled:
                tr.instant(
                    "resilience",
                    "rung.accepted",
                    application=application.name,
                    rung=rung.name,
                    position=position,
                    degraded=bool(attempts),
                )
            return ResilientResult(
                allocation=allocation, rung=rung.name, attempts=attempts
            )
        if budget is not None and budget.expired():
            attempts.append((rung.name, "deadline already expired"))
            if tr.enabled:
                tr.instant(
                    "resilience",
                    "rung.skipped",
                    application=application.name,
                    rung=rung.name,
                    position=position,
                )
            continue
        try:
            allocation = rung.configure(allocator).allocate(
                application, architecture, budget=budget
            )
        except BudgetExceededError as error:
            if error.reason == "cancelled":
                # a cooperative cancellation (e.g. service drain) wants
                # the work parked, not finished badly: persist the
                # frontier for a later resume and surface the error
                # instead of descending to the budget-exempt baseline
                if checkpoint_path and error.partial.get("checkpoint"):
                    from repro.resilience.checkpoint import write_checkpoint

                    write_checkpoint(
                        checkpoint_path, error.partial["checkpoint"]
                    )
                raise
            attempts.append((rung.name, f"budget exhausted ({error.reason})"))
            if obs.enabled:
                obs.counter("resilience.rung_budget_exhausted")
            if tr.enabled:
                tr.instant(
                    "resilience",
                    "rung.abandoned",
                    application=application.name,
                    rung=rung.name,
                    position=position,
                    reason=f"budget exhausted ({error.reason})",
                )
            if checkpoint_path and error.partial.get("checkpoint"):
                from repro.resilience.checkpoint import write_checkpoint

                write_checkpoint(
                    checkpoint_path, error.partial["checkpoint"]
                )
            continue
        except AllocationError as error:
            if not _degradable(error):
                raise
            attempts.append((rung.name, str(error)))
            if obs.enabled:
                obs.counter("resilience.rung_exploded")
            if tr.enabled:
                tr.instant(
                    "resilience",
                    "rung.abandoned",
                    application=application.name,
                    rung=rung.name,
                    position=position,
                    reason="state-space explosion",
                )
            continue
        if obs.enabled and attempts:
            obs.counter("resilience.degraded")
            obs.gauge("resilience.rung", position)
        if tr.enabled:
            tr.instant(
                "resilience",
                "rung.accepted",
                application=application.name,
                rung=rung.name,
                position=position,
                degraded=bool(attempts),
            )
        return ResilientResult(
            allocation=allocation, rung=rung.name, attempts=attempts
        )
    raise BudgetExceededError(
        f"every ladder rung gave up for {application.name!r}",
        reason="deadline",
        elapsed=budget.elapsed() if budget is not None else 0.0,
        partial={"attempts": attempts},
    )
