"""Cooperative resource budgets for the exploration engines.

The state-space engines at the heart of the allocation strategy can
blow up combinatorially on pathological inputs (the very motivation for
avoiding the SDF-to-HSDF conversion).  A :class:`Budget` bounds one run
of the strategy — or a whole multi-application flow — along three axes:

* **wall-clock deadline** (seconds),
* **state budget** (states explored, summed over every engine call),
* **throughput-check budget** (constrained explorations the slice
  search may spend).

The budget is *cooperative*: every exploration loop calls
:meth:`Budget.tick` (or :meth:`Budget.checkpoint` at coarser
boundaries) and a breach raises :class:`BudgetExceededError`, a typed
error carrying the breach reason and whatever partial progress the
raiser attached.  Passing ``budget=None`` (the default everywhere)
keeps the hot loops at a single ``is not None`` test per iteration —
guarded by ``tests/test_performance_guards.py`` to stay under 5% of
engine run time.

Wall-clock reads are rate-limited: ``tick`` consults the clock only
every ``check_interval`` charged states, so a deadline adds two integer
operations per state in the common case.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional

from repro.obs.trace import get_trace


class BudgetExceededError(RuntimeError):
    """A cooperative budget was exhausted mid-exploration.

    ``reason`` is one of ``"deadline"``, ``"states"``,
    ``"throughput-checks"`` or ``"cancelled"`` (a cooperative
    :meth:`Budget.cancel`, e.g. a draining service asking its workers
    to stop); ``partial`` carries whatever progress the
    raising engine had made (states explored, best slices found, ...)
    so callers can degrade gracefully instead of starting from nothing.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        elapsed: Optional[float] = None,
        states: Optional[int] = None,
        checks: Optional[int] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.elapsed = elapsed
        self.states = states
        self.checks = checks
        self.partial: Dict[str, Any] = dict(partial or {})


class Budget:
    """A shared, cooperative budget for one run (or one whole flow).

    All limits are optional; an unlimited budget never raises.  The
    wall clock starts at the first :meth:`start` (or lazily at the
    first check); one ``Budget`` instance threaded through several
    engine calls charges them against the *same* limits.
    """

    __slots__ = (
        "deadline",
        "max_states",
        "max_throughput_checks",
        "check_interval",
        "states_charged",
        "checks_charged",
        "_started",
        "_since_clock",
        "_cancelled",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_states: Optional[int] = None,
        max_throughput_checks: Optional[int] = None,
        check_interval: int = 1024,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        if max_states is not None and max_states < 0:
            raise ValueError("max_states must be >= 0")
        if max_throughput_checks is not None and max_throughput_checks < 0:
            raise ValueError("max_throughput_checks must be >= 0")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.deadline = deadline
        self.max_states = max_states
        self.max_throughput_checks = max_throughput_checks
        self.check_interval = check_interval
        self.states_charged = 0
        self.checks_charged = 0
        self._started: Optional[float] = None
        self._since_clock = 0
        self._cancelled = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Budget":
        """Stamp the wall-clock start (idempotent)."""
        if self._started is None:
            self._started = perf_counter()
        return self

    @property
    def started(self) -> bool:
        return self._started is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0 when never started)."""
        if self._started is None:
            return 0.0
        return perf_counter() - self._started

    def remaining_seconds(self) -> Optional[float]:
        """Seconds left before the deadline (None when unlimited)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def expired(self) -> bool:
        """True when the wall-clock deadline has passed (non-raising)."""
        if self.deadline is None:
            return False
        self.start()
        return self.elapsed() > self.deadline

    def cancel(self) -> None:
        """Cooperatively cancel whatever this budget is metering.

        Thread-safe by construction (a single flag write).  The engine
        holding the budget observes the flag at its next
        :meth:`checkpoint` — at most ``check_interval`` states later —
        and unwinds with ``BudgetExceededError(reason="cancelled")``,
        attaching its exploration frontier exactly as it would for a
        deadline breach, so the interrupted search stays resumable.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- charging ------------------------------------------------------
    def tick(self, states: int = 1) -> None:
        """Charge ``states`` explored states; raise on any breach.

        Designed for hot loops: the wall clock is consulted only every
        ``check_interval`` charged states.
        """
        self.states_charged += states
        if (
            self.max_states is not None
            and self.states_charged > self.max_states
        ):
            self._trace_exhausted("states")
            raise BudgetExceededError(
                f"state budget of {self.max_states} states exhausted",
                reason="states",
                elapsed=self.elapsed(),
                states=self.states_charged,
                checks=self.checks_charged,
            )
        if self.deadline is None and not self._cancelled:
            return
        self._since_clock += states
        if self._since_clock >= self.check_interval:
            self._since_clock = 0
            self.checkpoint()

    def checkpoint(self) -> None:
        """Immediate cancellation + wall-clock check (coarse boundaries)."""
        if self._cancelled:
            self._trace_exhausted("cancelled")
            raise BudgetExceededError(
                "budget cancelled",
                reason="cancelled",
                elapsed=self.elapsed(),
                states=self.states_charged,
                checks=self.checks_charged,
            )
        if self.deadline is None:
            return
        self.start()
        elapsed = self.elapsed()
        if elapsed > self.deadline:
            self._trace_exhausted("deadline")
            raise BudgetExceededError(
                f"deadline of {self.deadline:g}s exceeded "
                f"({elapsed:.3f}s elapsed)",
                reason="deadline",
                elapsed=elapsed,
                states=self.states_charged,
                checks=self.checks_charged,
            )

    def charge_check(self, checks: int = 1) -> None:
        """Charge throughput checks (slice-search evaluations)."""
        self.checks_charged += checks
        if (
            self.max_throughput_checks is not None
            and self.checks_charged > self.max_throughput_checks
        ):
            self._trace_exhausted("throughput-checks")
            raise BudgetExceededError(
                f"throughput-check budget of {self.max_throughput_checks} "
                "exhausted",
                reason="throughput-checks",
                elapsed=self.elapsed(),
                states=self.states_charged,
                checks=self.checks_charged,
            )
        self.checkpoint()

    def _trace_exhausted(self, reason: str) -> None:
        """Record the breach in the active trace (off the hot path)."""
        tr = get_trace()
        if tr.enabled:
            tr.instant(
                "resilience",
                "budget.exhausted",
                reason=reason,
                states=self.states_charged,
                checks=self.checks_charged,
                elapsed_seconds=self.elapsed(),
            )

    def __repr__(self) -> str:
        return (
            f"Budget(deadline={self.deadline}, max_states={self.max_states}, "
            f"max_throughput_checks={self.max_throughput_checks}, "
            f"states_charged={self.states_charged}, "
            f"checks_charged={self.checks_charged})"
        )
