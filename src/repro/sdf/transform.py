"""SDF to homogeneous SDF (HSDF) conversion.

The classical unfolding (Sriram & Bhattacharyya): every actor ``a`` is
replaced by ``gamma(a)`` copies, one per firing in an iteration, and every
channel is expanded into single-rate edges between the producing and
consuming firings, with initial tokens counting iteration shifts.

The paper's central argument is that this conversion can blow up
exponentially (H.263: 4 actors -> 4754), which is why its strategy works
on the SDFG directly.  We implement the conversion both as the baseline
the paper compares against and to validate the state-space throughput
engine against max-cycle-mean analysis on small graphs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def hsdf_actor_name(actor: str, copy: int) -> str:
    """Name of the HSDF copy for firing ``copy`` of ``actor``."""
    return f"{actor}#{copy}"


def hsdf_size(graph: SDFGraph) -> int:
    """Number of actors of the HSDFG equivalent to ``graph``.

    Cheap (no conversion): it is the sum of the repetition vector.
    """
    return sum(repetition_vector(graph).values())


def sdf_to_hsdf(graph: SDFGraph, name: Optional[str] = None) -> SDFGraph:
    """The homogeneous SDFG equivalent to ``graph``.

    Every edge of the result has production and consumption rate 1; the
    initial tokens on an edge encode by how many iterations the producing
    firing precedes the consuming one.  Parallel edges implied by several
    consumed tokens of the same dependency are de-duplicated (keeping the
    smallest delay, which is the binding constraint).
    """
    gamma = repetition_vector(graph)
    hsdf = SDFGraph(name or f"{graph.name}-hsdf")
    for actor in graph.actors:
        for copy in range(gamma[actor.name]):
            hsdf.add_actor(hsdf_actor_name(actor.name, copy), actor.execution_time)

    edge_count = 0
    for channel in graph.channels:
        produced = channel.production
        consumed = channel.consumption
        delta = channel.tokens
        copies_src = gamma[channel.src]
        copies_dst = gamma[channel.dst]
        # (consumer copy -> (producer copy, delay)) with minimal delay kept
        edges: Dict[Tuple[int, int], int] = {}
        for k in range(copies_dst):
            for j in range(consumed):
                token_index = k * consumed + j - delta
                # Python floor division gives the right producer index for
                # negative token indices (tokens produced in a previous,
                # possibly virtual, iteration).
                producer_global = token_index // produced
                producer_copy = producer_global % copies_src
                delay = -(producer_global // copies_src)
                key = (k, producer_copy)
                if key not in edges or delay < edges[key]:
                    edges[key] = delay
        for (k, producer_copy), delay in sorted(edges.items()):
            hsdf.add_channel(
                f"{channel.name}@{edge_count}",
                hsdf_actor_name(channel.src, producer_copy),
                hsdf_actor_name(channel.dst, k),
                1,
                1,
                delay,
            )
            edge_count += 1
    return hsdf


def precedence_edges(graph: SDFGraph) -> Set[Tuple[str, str]]:
    """Distinct (src, dst) pairs of the HSDFG of ``graph`` (no conversion).

    Useful to size the HSDFG edge set without materialising the graph.
    """
    gamma = repetition_vector(graph)
    pairs: Set[Tuple[str, str]] = set()
    for channel in graph.channels:
        for k in range(gamma[channel.dst]):
            for j in range(channel.consumption):
                token_index = k * channel.consumption + j - channel.tokens
                producer_global = token_index // channel.production
                producer_copy = producer_global % gamma[channel.src]
                pairs.add(
                    (
                        hsdf_actor_name(channel.src, producer_copy),
                        hsdf_actor_name(channel.dst, k),
                    )
                )
    return pairs
