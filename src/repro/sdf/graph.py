"""Core SDFG data structures: actors, channels and the graph itself.

The model follows Definition 1 of the paper: an SDFG is a tuple ``(A, D)``
of a finite set of actors and a finite set of dependency edges
``d = (a, b, p, q)``; when ``a`` fires it produces ``p`` tokens on ``d``
and when ``b`` fires it removes ``q`` tokens from ``d``.  Edges may carry
initial tokens (``Tok``).

Actors optionally carry a default execution time (the paper's timing
function ``Y``); graphs that are analysed independently of a platform use
it directly, while binding-aware graphs override it with the execution
time on the bound processor type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass
class Actor:
    """A node of an SDFG.

    Parameters
    ----------
    name:
        Unique identifier within the graph.
    execution_time:
        Default execution time (time units per firing) used by
        platform-independent throughput analysis.  Binding-aware graphs
        set this to the execution time on the bound processor.
    """

    name: str
    execution_time: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("actor name must be non-empty")
        if self.execution_time < 0:
            raise ValueError(
                f"actor {self.name!r}: execution time must be >= 0, "
                f"got {self.execution_time}"
            )

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class Channel:
    """A dependency edge ``d = (src, dst, production, consumption)``.

    ``tokens`` is the number of initial tokens on the edge (``Tok(d)``).
    """

    name: str
    src: str
    dst: str
    production: int = 1
    consumption: int = 1
    tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("channel name must be non-empty")
        if self.production < 1:
            raise ValueError(
                f"channel {self.name!r}: production rate must be >= 1, "
                f"got {self.production}"
            )
        if self.consumption < 1:
            raise ValueError(
                f"channel {self.name!r}: consumption rate must be >= 1, "
                f"got {self.consumption}"
            )
        if self.tokens < 0:
            raise ValueError(
                f"channel {self.name!r}: initial tokens must be >= 0, "
                f"got {self.tokens}"
            )

    @property
    def is_self_loop(self) -> bool:
        """True when source and destination actor coincide."""
        return self.src == self.dst

    def __hash__(self) -> int:
        return hash(self.name)


class SDFGraph:
    """A Synchronous Dataflow Graph.

    Actors and channels are stored in insertion order and addressed by
    name.  The class offers the structural queries that the analyses and
    the resource-allocation strategy need (incident channels, successor
    actors, sub-graphs, ...) but contains no analysis logic itself.
    """

    def __init__(self, name: str = "sdfg") -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._channels: Dict[str, Channel] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        # Where the graph was parsed from, stamped by the serializers so
        # lint findings can point at file and field (None for API-built
        # graphs).  Keys are ("actor", name) / ("channel", name).
        self.source: Optional[str] = None
        self.provenance: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_actor(
        self, name: str, execution_time: int = 1
    ) -> Actor:
        """Add an actor and return it.

        Raises ``ValueError`` if an actor with the same name exists.
        """
        if name in self._actors:
            raise ValueError(f"duplicate actor {name!r}")
        actor = Actor(name, execution_time)
        self._actors[name] = actor
        self._out[name] = []
        self._in[name] = []
        return actor

    def add_channel(
        self,
        name: str,
        src: str,
        dst: str,
        production: int = 1,
        consumption: int = 1,
        tokens: int = 0,
    ) -> Channel:
        """Add a dependency edge from ``src`` to ``dst`` and return it.

        Both endpoints must already be actors of the graph.
        """
        if name in self._channels:
            raise ValueError(f"duplicate channel {name!r}")
        if src not in self._actors:
            raise KeyError(f"unknown source actor {src!r}")
        if dst not in self._actors:
            raise KeyError(f"unknown destination actor {dst!r}")
        channel = Channel(name, src, dst, production, consumption, tokens)
        self._channels[name] = channel
        self._out[src].append(name)
        self._in[dst].append(name)
        return channel

    def remove_channel(self, name: str) -> None:
        """Remove the channel called ``name``."""
        channel = self._channels.pop(name)
        self._out[channel.src].remove(name)
        self._in[channel.dst].remove(name)

    def remove_actor(self, name: str) -> None:
        """Remove an actor and all channels incident to it."""
        if name not in self._actors:
            raise KeyError(f"unknown actor {name!r}")
        for channel_name in list(self._out[name]) + list(self._in[name]):
            if channel_name in self._channels:
                self.remove_channel(channel_name)
        del self._actors[name]
        del self._out[name]
        del self._in[name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def actors(self) -> List[Actor]:
        """All actors, in insertion order."""
        return list(self._actors.values())

    @property
    def channels(self) -> List[Channel]:
        """All channels, in insertion order."""
        return list(self._channels.values())

    @property
    def actor_names(self) -> List[str]:
        return list(self._actors.keys())

    @property
    def channel_names(self) -> List[str]:
        return list(self._channels.keys())

    def actor(self, name: str) -> Actor:
        """The actor called ``name`` (KeyError if absent)."""
        return self._actors[name]

    def channel(self, name: str) -> Channel:
        """The channel called ``name`` (KeyError if absent)."""
        return self._channels[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def has_channel(self, name: str) -> bool:
        return name in self._channels

    def out_channels(self, actor: str) -> List[Channel]:
        """Channels whose source is ``actor`` (self-loops included)."""
        return [self._channels[c] for c in self._out[actor]]

    def in_channels(self, actor: str) -> List[Channel]:
        """Channels whose destination is ``actor`` (self-loops included)."""
        return [self._channels[c] for c in self._in[actor]]

    def successors(self, actor: str) -> List[str]:
        """Distinct successor actor names (insertion order)."""
        seen = {}
        for channel in self.out_channels(actor):
            seen.setdefault(channel.dst, None)
        return list(seen.keys())

    def predecessors(self, actor: str) -> List[str]:
        """Distinct predecessor actor names (insertion order)."""
        seen = {}
        for channel in self.in_channels(actor):
            seen.setdefault(channel.src, None)
        return list(seen.keys())

    def channels_between(self, src: str, dst: str) -> List[Channel]:
        """All channels from ``src`` to ``dst``."""
        return [c for c in self.out_channels(src) if c.dst == dst]

    def __len__(self) -> int:
        return len(self._actors)

    def __contains__(self, actor_name: str) -> bool:
        return actor_name in self._actors

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def __repr__(self) -> str:
        return (
            f"SDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"channels={len(self._channels)})"
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "SDFGraph":
        """A structural deep copy of this graph."""
        clone = SDFGraph(name or self.name)
        clone.source = self.source
        clone.provenance = dict(self.provenance)
        for actor in self.actors:
            clone.add_actor(actor.name, actor.execution_time)
        for channel in self.channels:
            clone.add_channel(
                channel.name,
                channel.src,
                channel.dst,
                channel.production,
                channel.consumption,
                channel.tokens,
            )
        return clone

    def subgraph(
        self, actor_names: Iterable[str], name: Optional[str] = None
    ) -> "SDFGraph":
        """The induced sub-graph on ``actor_names``.

        Channels are kept only when both endpoints are in the set.
        """
        keep = set(actor_names)
        unknown = keep - set(self._actors)
        if unknown:
            raise KeyError(f"unknown actors: {sorted(unknown)}")
        sub = SDFGraph(name or f"{self.name}-sub")
        for actor in self.actors:
            if actor.name in keep:
                sub.add_actor(actor.name, actor.execution_time)
        for channel in self.channels:
            if channel.src in keep and channel.dst in keep:
                sub.add_channel(
                    channel.name,
                    channel.src,
                    channel.dst,
                    channel.production,
                    channel.consumption,
                    channel.tokens,
                )
        return sub

    def execution_times(self) -> Dict[str, int]:
        """Mapping actor name -> default execution time."""
        return {a.name: a.execution_time for a in self.actors}


def chain(
    names: Iterable[str],
    execution_times: Optional[Iterable[int]] = None,
    tokens_on_back_edge: Optional[int] = None,
    graph_name: str = "chain",
) -> SDFGraph:
    """Build a homogeneous (all rates 1) chain ``a1 -> a2 -> ... -> an``.

    Convenience used pervasively in tests and examples.  When
    ``tokens_on_back_edge`` is given, a back edge from the last to the
    first actor with that many initial tokens closes the chain into a
    cycle (making self-timed execution bounded).
    """
    names = list(names)
    times: List[int] = (
        list(execution_times) if execution_times is not None else [1] * len(names)
    )
    if len(times) != len(names):
        raise ValueError("execution_times must match names in length")
    graph = SDFGraph(graph_name)
    for name, time in zip(names, times):
        graph.add_actor(name, time)
    for first, second in zip(names, names[1:]):
        graph.add_channel(f"{first}->{second}", first, second)
    if tokens_on_back_edge is not None and len(names) > 1:
        graph.add_channel(
            f"{names[-1]}->{names[0]}",
            names[-1],
            names[0],
            tokens=tokens_on_back_edge,
        )
    return graph
