"""Repetition vectors and consistency (paper Definition 2).

A repetition vector ``gamma`` satisfies ``p * gamma(a) = q * gamma(b)``
for every channel ``(a, b, p, q)``.  A consistent SDFG has a non-trivial
(everywhere positive) repetition vector; *the* repetition vector is the
smallest such vector.  Inconsistent graphs either deadlock or need
unbounded memory, so the allocation strategy rejects them up front.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Optional

from repro.sdf.graph import SDFGraph


class InconsistentGraphError(ValueError):
    """Raised when a graph admits no non-trivial repetition vector."""


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


def repetition_vector(graph: SDFGraph) -> Dict[str, int]:
    """The smallest non-trivial repetition vector of ``graph``.

    Raises :class:`InconsistentGraphError` when the graph is not
    consistent.  Works per weakly-connected component: each component is
    solved independently and scaled to the smallest integer vector.
    """
    if len(graph) == 0:
        return {}

    fractional: Dict[str, Fraction] = {}
    for seed in graph.actor_names:
        if seed in fractional:
            continue
        fractional[seed] = Fraction(1)
        stack = [seed]
        while stack:
            actor = stack.pop()
            rate = fractional[actor]
            for channel in graph.out_channels(actor):
                implied = rate * channel.production / channel.consumption
                known = fractional.get(channel.dst)
                if known is None:
                    fractional[channel.dst] = implied
                    stack.append(channel.dst)
                elif known != implied:
                    raise InconsistentGraphError(
                        f"graph {graph.name!r}: channel {channel.name!r} "
                        f"implies gamma({channel.dst}) = {implied}, but "
                        f"{known} was already derived"
                    )
            for channel in graph.in_channels(actor):
                implied = rate * channel.consumption / channel.production
                known = fractional.get(channel.src)
                if known is None:
                    fractional[channel.src] = implied
                    stack.append(channel.src)
                elif known != implied:
                    raise InconsistentGraphError(
                        f"graph {graph.name!r}: channel {channel.name!r} "
                        f"implies gamma({channel.src}) = {implied}, but "
                        f"{known} was already derived"
                    )

    denominator_lcm = 1
    for value in fractional.values():
        denominator_lcm = _lcm(denominator_lcm, value.denominator)
    integral = {
        name: int(value * denominator_lcm) for name, value in fractional.items()
    }
    overall_gcd = 0
    for value in integral.values():
        overall_gcd = gcd(overall_gcd, value)
    return {name: value // overall_gcd for name, value in integral.items()}


def is_consistent(graph: SDFGraph) -> bool:
    """True when ``graph`` has a non-trivial repetition vector."""
    try:
        repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def iteration_length(graph: SDFGraph, gamma: Optional[Dict[str, int]] = None) -> int:
    """Total number of firings in one graph iteration (sum of gamma).

    This equals the number of actors of the corresponding HSDFG, the
    quantity the paper uses to argue HSDF conversion blows up (e.g. the
    H.263 decoder: 4754).
    """
    if gamma is None:
        gamma = repetition_vector(graph)
    return sum(gamma.values())
