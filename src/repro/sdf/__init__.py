"""Synchronous Dataflow Graph (SDFG) substrate.

This package implements the dataflow model of the paper's Section 3:
actors connected by dependency edges (channels) that carry tokens, with
fixed production/consumption rates per firing.  On top of the data
structures it provides the classical SDF analyses the resource-allocation
strategy relies on:

* repetition vectors and consistency (:mod:`repro.sdf.repetition`),
* deadlock-freedom / liveness (:mod:`repro.sdf.analysis`),
* SDF to homogeneous-SDF (HSDF) conversion (:mod:`repro.sdf.transform`),
* cycle utilities used by the criticality estimate (:mod:`repro.sdf.cycles`),
* structural validation (:mod:`repro.sdf.validate`),
* JSON and SDF3-like XML serialisation (:mod:`repro.sdf.serialization`).
"""

from repro.sdf.graph import Actor, Channel, SDFGraph
from repro.sdf.repetition import repetition_vector, is_consistent
from repro.sdf.analysis import is_deadlock_free, strongly_connected_components
from repro.sdf.transform import sdf_to_hsdf, hsdf_size
from repro.sdf.cycles import simple_cycles, cycle_ratio, max_cycle_ratio
from repro.sdf.validate import validate_graph, ValidationError
from repro.sdf.serialization import (
    graph_to_dict,
    graph_from_dict,
    graph_to_json,
    graph_from_json,
    graph_to_sdf3_xml,
    graph_from_sdf3_xml,
)

__all__ = [
    "Actor",
    "Channel",
    "SDFGraph",
    "repetition_vector",
    "is_consistent",
    "is_deadlock_free",
    "strongly_connected_components",
    "sdf_to_hsdf",
    "hsdf_size",
    "simple_cycles",
    "cycle_ratio",
    "max_cycle_ratio",
    "validate_graph",
    "ValidationError",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "graph_to_sdf3_xml",
    "graph_from_sdf3_xml",
]
