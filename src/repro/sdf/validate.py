"""Structural validation of SDFGs.

The allocation strategy only accepts consistent, deadlock-free graphs
(paper Section 3: anything else needs unbounded memory or never runs).
:func:`validate_graph` collects *all* problems instead of failing on the
first, which makes generator and serialisation bugs much easier to
diagnose.
"""

from __future__ import annotations

from typing import List

from repro.sdf.analysis import is_connected, is_deadlock_free
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import InconsistentGraphError, repetition_vector


class ValidationError(ValueError):
    """Raised by :func:`validate_graph` with all detected problems."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def validation_problems(
    graph: SDFGraph,
    require_connected: bool = True,
    require_deadlock_free: bool = True,
) -> List[str]:
    """All structural problems of ``graph`` (empty list when valid)."""
    problems: List[str] = []
    if len(graph) == 0:
        problems.append("graph has no actors")
        return problems

    consistent = True
    try:
        repetition_vector(graph)
    except InconsistentGraphError as error:
        consistent = False
        problems.append(f"inconsistent: {error}")

    if require_connected and not is_connected(graph):
        problems.append("graph is not (weakly) connected")

    if require_deadlock_free and consistent and not is_deadlock_free(graph):
        problems.append("graph deadlocks (cannot complete one iteration)")

    for channel in graph.channels:
        if channel.is_self_loop and channel.production != channel.consumption:
            problems.append(
                f"self-loop {channel.name!r} has unequal rates "
                f"({channel.production} != {channel.consumption}), "
                "which is inconsistent"
            )
    return problems


def validate_graph(
    graph: SDFGraph,
    require_connected: bool = True,
    require_deadlock_free: bool = True,
) -> None:
    """Raise :class:`ValidationError` when ``graph`` is not well formed."""
    problems = validation_problems(
        graph,
        require_connected=require_connected,
        require_deadlock_free=require_deadlock_free,
    )
    if problems:
        raise ValidationError(problems)
