"""Structural analyses: deadlock-freedom and strong connectivity.

Deadlock-freedom is decided by abstractly executing one full iteration of
the graph (time-free): repeatedly fire any actor that still owes firings
this iteration and has enough tokens.  A consistent SDFG is deadlock-free
iff one complete iteration can be executed this way (Lee & Messerschmitt).

Strongly connected components drive both the state-space throughput
engine (throughput of a graph = min over SCCs) and cycle-based
criticality estimates.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def strongly_connected_components(graph: SDFGraph) -> List[List[str]]:
    """Tarjan's algorithm (iterative); components in reverse topological order.

    Each component is a list of actor names in discovery order.
    """
    index_counter = 0
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []

    for root in graph.actor_names:
        if root in indices:
            continue
        work = [(root, iter(graph.successors(root)))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in indices:
                    indices[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def is_strongly_connected(graph: SDFGraph) -> bool:
    """True when the graph forms a single strongly connected component."""
    if len(graph) == 0:
        return True
    return len(strongly_connected_components(graph)) == 1


def is_deadlock_free(graph: SDFGraph) -> bool:
    """True when one complete iteration can execute from the initial tokens.

    The graph must be consistent; inconsistent graphs raise
    :class:`repro.sdf.repetition.InconsistentGraphError`.
    """
    gamma = repetition_vector(graph)
    remaining = dict(gamma)
    tokens = {c.name: c.tokens for c in graph.channels}
    pending = [a for a in graph.actor_names if remaining[a] > 0]

    def enabled(actor: str) -> bool:
        return all(
            tokens[c.name] >= c.consumption for c in graph.in_channels(actor)
        )

    progressed = True
    while progressed:
        progressed = False
        still_pending: List[str] = []
        for actor in pending:
            fired = 0
            while remaining[actor] > 0 and enabled(actor):
                for channel in graph.in_channels(actor):
                    tokens[channel.name] -= channel.consumption
                for channel in graph.out_channels(actor):
                    tokens[channel.name] += channel.production
                remaining[actor] -= 1
                fired += 1
            if fired:
                progressed = True
            if remaining[actor] > 0:
                still_pending.append(actor)
        pending = still_pending
    return not pending


def undirected_components(graph: SDFGraph) -> List[List[str]]:
    """Weakly connected components (actor names, discovery order)."""
    seen: Set[str] = set()
    components: List[List[str]] = []
    for root in graph.actor_names:
        if root in seen:
            continue
        component: List[str] = []
        stack = [root]
        seen.add(root)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in graph.successors(node) + graph.predecessors(node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        components.append(component)
    return components


def is_connected(graph: SDFGraph) -> bool:
    """True when the graph is weakly connected (or empty)."""
    return len(graph) == 0 or len(undirected_components(graph)) == 1


def actors_on_cycles(graph: SDFGraph) -> Set[str]:
    """Actors that lie on at least one directed cycle (incl. self-loops)."""
    result: Set[str] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            result.update(component)
    for channel in graph.channels:
        if channel.is_self_loop:
            result.add(channel.src)
    return result
