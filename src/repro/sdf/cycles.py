"""Cycle enumeration and cycle-ratio utilities.

The binding step of the strategy estimates actor criticality (paper
Eqn. 1) as the maximum, over simple cycles through the actor, of

    sum_b gamma(b) * tau_max(b)  /  sum_d Tok(d) / q_d .

This module provides generic cycle enumeration on :class:`SDFGraph`
(via Johnson's algorithm, through networkx) plus exact Fraction-based
ratio computation.  When several channels connect the same actor pair on
a cycle, the channel minimising ``Tok/q`` is the binding constraint and
is the one counted.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import islice
from typing import Dict, List, Optional, Union

import networkx as nx

from repro.obs import get_metrics
from repro.sdf.graph import SDFGraph

Ratio = Union[Fraction, float]


def _to_networkx(graph: SDFGraph) -> nx.DiGraph:
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.actor_names)
    for channel in graph.channels:
        digraph.add_edge(channel.src, channel.dst)
    return digraph


def simple_cycles(
    graph: SDFGraph, limit: Optional[int] = None
) -> List[List[str]]:
    """Simple cycles of ``graph`` as actor-name lists (self-loops included).

    ``limit`` caps the number of enumerated cycles (Johnson's algorithm
    is output-sensitive but the number of cycles can be exponential; the
    criticality estimate degrades gracefully under a cap).
    """
    iterator = nx.simple_cycles(_to_networkx(graph))
    if limit is not None:
        iterator = islice(iterator, limit)
    return [list(cycle) for cycle in iterator]


def _min_hop_denominator(graph: SDFGraph, src: str, dst: str) -> Fraction:
    """Smallest ``Tok/q`` over channels from ``src`` to ``dst``."""
    candidates = graph.channels_between(src, dst)
    if not candidates:
        raise KeyError(f"no channel from {src!r} to {dst!r}")
    return min(Fraction(c.tokens, c.consumption) for c in candidates)


def cycle_ratio(
    graph: SDFGraph,
    cycle: List[str],
    weights: Dict[str, Union[int, Fraction]],
) -> Ratio:
    """The ratio of ``cycle``: actor weights over normalised tokens.

    ``weights[a]`` is the numerator contribution of actor ``a`` (for
    Eqn. 1 that is ``gamma(a) * tau_max(a)``).  Returns ``float('inf')``
    when the cycle carries no tokens (such a cycle deadlocks; callers
    treat it as maximally critical).
    """
    numerator = sum(Fraction(weights[a]) for a in cycle)
    denominator = Fraction(0)
    hops = list(zip(cycle, cycle[1:] + cycle[:1]))
    for src, dst in hops:
        denominator += _min_hop_denominator(graph, src, dst)
    if denominator == 0:
        return float("inf")
    return numerator / denominator


def per_actor_max_cycle_ratio(
    graph: SDFGraph,
    weights: Dict[str, Union[int, Fraction]],
    limit: Optional[int] = 20000,
) -> Dict[str, Ratio]:
    """For every actor, the max ratio over simple cycles through it.

    Actors on no cycle are absent from the result (the caller decides
    their fallback criticality).
    """
    best: Dict[str, Ratio] = {}
    for cycle in simple_cycles(graph, limit=limit):
        ratio = cycle_ratio(graph, cycle, weights)
        for actor in cycle:
            current = best.get(actor)
            if current is None or ratio > current:
                best[actor] = ratio
    return best


def max_cycle_ratio(
    graph: SDFGraph,
    weights: Optional[Dict[str, Union[int, Fraction]]] = None,
    limit: Optional[int] = 20000,
) -> Optional[Ratio]:
    """Maximum cycle ratio over all simple cycles (None when acyclic).

    With default weights (actor execution times) on an HSDFG this is the
    maximum cycle mean, whose reciprocal is the graph's throughput.
    """
    if weights is None:
        weights = {a.name: a.execution_time for a in graph.actors}
    best: Optional[Ratio] = None
    count = 0
    for cycle in simple_cycles(graph, limit=limit):
        count += 1
        ratio = cycle_ratio(graph, cycle, weights)
        if best is None or ratio > best:
            best = ratio
    obs = get_metrics()
    if obs.enabled:
        obs.counter("cycles.enumerated", count)
        if limit is not None and count == limit:
            obs.counter("cycles.limit_hits")
    return best
