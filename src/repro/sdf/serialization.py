"""SDFG serialisation: plain dict/JSON and an SDF3-like XML dialect.

The JSON form is the native interchange format of this library (used by
the CLI); the XML form mirrors the structure of the SDF3 tool's ``.xml``
files closely enough that graphs are easy to port by hand, without
claiming byte compatibility.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ElementTree
from typing import Any, Dict

from repro.sdf.graph import SDFGraph


def graph_to_dict(graph: SDFGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary capturing the full graph."""
    return {
        "name": graph.name,
        "actors": [
            {"name": a.name, "execution_time": a.execution_time}
            for a in graph.actors
        ],
        "channels": [
            {
                "name": c.name,
                "src": c.src,
                "dst": c.dst,
                "production": c.production,
                "consumption": c.consumption,
                "tokens": c.tokens,
            }
            for c in graph.channels
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> SDFGraph:
    """Inverse of :func:`graph_to_dict`."""
    graph = SDFGraph(data.get("name", "sdfg"))
    for actor in data.get("actors", []):
        graph.add_actor(actor["name"], int(actor.get("execution_time", 1)))
    for channel in data.get("channels", []):
        graph.add_channel(
            channel["name"],
            channel["src"],
            channel["dst"],
            int(channel.get("production", 1)),
            int(channel.get("consumption", 1)),
            int(channel.get("tokens", 0)),
        )
    return graph


def graph_to_json(graph: SDFGraph, indent: int = 2) -> str:
    """JSON text for ``graph``."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str) -> SDFGraph:
    """Parse a graph from JSON text produced by :func:`graph_to_json`."""
    return graph_from_dict(json.loads(text))


def graph_to_sdf3_xml(graph: SDFGraph) -> str:
    """An SDF3-style XML rendering of ``graph``.

    Layout::

        <sdf3 type="sdf">
          <applicationGraph name="...">
            <sdf name="...">
              <actor name="a"> <port name="out" type="out" rate="2"/> ... </actor>
              <channel name="d" srcActor="a" srcPort="out"
                       dstActor="b" dstPort="in" initialTokens="1"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a"> <executionTime time="3"/> ...
            </sdfProperties>
          </applicationGraph>
        </sdf3>
    """
    root = ElementTree.Element("sdf3", {"type": "sdf", "version": "1.0"})
    app = ElementTree.SubElement(root, "applicationGraph", {"name": graph.name})
    sdf = ElementTree.SubElement(app, "sdf", {"name": graph.name})
    actor_elements = {}
    for actor in graph.actors:
        actor_elements[actor.name] = ElementTree.SubElement(
            sdf, "actor", {"name": actor.name, "type": actor.name}
        )
    for channel in graph.channels:
        src_port = f"{channel.name}_out"
        dst_port = f"{channel.name}_in"
        ElementTree.SubElement(
            actor_elements[channel.src],
            "port",
            {"name": src_port, "type": "out", "rate": str(channel.production)},
        )
        ElementTree.SubElement(
            actor_elements[channel.dst],
            "port",
            {"name": dst_port, "type": "in", "rate": str(channel.consumption)},
        )
        attributes = {
            "name": channel.name,
            "srcActor": channel.src,
            "srcPort": src_port,
            "dstActor": channel.dst,
            "dstPort": dst_port,
        }
        if channel.tokens:
            attributes["initialTokens"] = str(channel.tokens)
        ElementTree.SubElement(sdf, "channel", attributes)
    properties = ElementTree.SubElement(app, "sdfProperties")
    for actor in graph.actors:
        actor_properties = ElementTree.SubElement(
            properties, "actorProperties", {"actor": actor.name}
        )
        processor = ElementTree.SubElement(
            actor_properties, "processor", {"type": "default", "default": "true"}
        )
        ElementTree.SubElement(
            processor, "executionTime", {"time": str(actor.execution_time)}
        )
    return ElementTree.tostring(root, encoding="unicode")


def graph_from_sdf3_xml(text: str) -> SDFGraph:
    """Parse a graph from the XML dialect of :func:`graph_to_sdf3_xml`.

    Also accepts hand-written files as long as every channel references
    ports whose rates are defined on the endpoint actors.
    """
    root = ElementTree.fromstring(text)
    app = root.find("applicationGraph")
    if app is None:
        raise ValueError("missing <applicationGraph> element")
    sdf = app.find("sdf")
    if sdf is None:
        raise ValueError("missing <sdf> element")
    graph = SDFGraph(app.get("name", sdf.get("name", "sdfg")))

    port_rates: Dict[str, Dict[str, int]] = {}
    for actor_element in sdf.findall("actor"):
        actor_name = actor_element.get("name")
        if actor_name is None:
            raise ValueError("<actor> without name")
        graph.add_actor(actor_name)
        port_rates[actor_name] = {
            port.get("name", ""): int(port.get("rate", "1"))
            for port in actor_element.findall("port")
        }

    for channel_element in sdf.findall("channel"):
        src = channel_element.get("srcActor")
        dst = channel_element.get("dstActor")
        name = channel_element.get("name")
        if not (src and dst and name):
            raise ValueError("<channel> missing name/srcActor/dstActor")
        production = port_rates.get(src, {}).get(
            channel_element.get("srcPort", ""), 1
        )
        consumption = port_rates.get(dst, {}).get(
            channel_element.get("dstPort", ""), 1
        )
        tokens = int(channel_element.get("initialTokens", "0"))
        graph.add_channel(name, src, dst, production, consumption, tokens)

    properties = app.find("sdfProperties")
    if properties is not None:
        for actor_properties in properties.findall("actorProperties"):
            actor_name = actor_properties.get("actor")
            if actor_name is None or not graph.has_actor(actor_name):
                continue
            for processor in actor_properties.findall("processor"):
                timing = processor.find("executionTime")
                if timing is not None and processor.get("default") == "true":
                    graph.actor(actor_name).execution_time = int(
                        timing.get("time", "1")
                    )
    return graph
