"""SDFG serialisation: plain dict/JSON and an SDF3-like XML dialect.

The JSON form is the native interchange format of this library (used by
the CLI); the XML form mirrors the structure of the SDF3 tool's ``.xml``
files closely enough that graphs are easy to port by hand, without
claiming byte compatibility.

Malformed input raises :class:`SerializationError` — a
:class:`ValueError` subclass carrying the offending file (``source``)
and field (``field``) so CLI users get a one-line diagnostic instead of
a traceback.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ElementTree
from typing import Any, Dict, Optional

from repro.sdf.graph import SDFGraph


class SerializationError(ValueError):
    """Malformed serialised input (JSON or XML).

    ``source`` names the file (or other origin) being parsed, ``field``
    the offending entry (e.g. ``"channels[2].production"``); both are
    optional and folded into the message when present.
    """

    def __init__(
        self,
        message: str,
        *,
        source: Optional[str] = None,
        field: Optional[str] = None,
    ) -> None:
        context = []
        if source is not None:
            context.append(f"in {source}")
        if field is not None:
            context.append(f"at {field}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
        self.source = source
        self.field = field


def graph_to_dict(graph: SDFGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary capturing the full graph."""
    return {
        "name": graph.name,
        "actors": [
            {"name": a.name, "execution_time": a.execution_time}
            for a in graph.actors
        ],
        "channels": [
            {
                "name": c.name,
                "src": c.src,
                "dst": c.dst,
                "production": c.production,
                "consumption": c.consumption,
                "tokens": c.tokens,
            }
            for c in graph.channels
        ],
    }


def graph_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> SDFGraph:
    """Inverse of :func:`graph_to_dict`.

    Raises :class:`SerializationError` (naming the offending field and,
    when given, the ``source`` file) for malformed documents.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"graph document must be a JSON object, "
            f"got {type(data).__name__}",
            source=source,
        )
    graph = SDFGraph(data.get("name", "sdfg"))
    graph.source = source
    for index, actor in enumerate(data.get("actors", [])):
        field = f"actors[{index}]"
        if not isinstance(actor, dict) or "name" not in actor:
            raise SerializationError(
                "actor entry must be an object with a 'name'",
                source=source,
                field=field,
            )
        try:
            graph.add_actor(actor["name"], int(actor.get("execution_time", 1)))
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad actor entry: {error}", source=source, field=field
            ) from error
        graph.provenance[("actor", actor["name"])] = field
    for index, channel in enumerate(data.get("channels", [])):
        field = f"channels[{index}]"
        if not isinstance(channel, dict):
            raise SerializationError(
                "channel entry must be an object", source=source, field=field
            )
        try:
            graph.add_channel(
                channel["name"],
                channel["src"],
                channel["dst"],
                int(channel.get("production", 1)),
                int(channel.get("consumption", 1)),
                int(channel.get("tokens", 0)),
            )
        except KeyError as error:
            raise SerializationError(
                f"channel entry missing key {error}",
                source=source,
                field=field,
            ) from error
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad channel entry: {error}", source=source, field=field
            ) from error
        graph.provenance[("channel", channel["name"])] = field
    return graph


def graph_to_json(graph: SDFGraph, indent: int = 2) -> str:
    """JSON text for ``graph``."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str, source: Optional[str] = None) -> SDFGraph:
    """Parse a graph from JSON text produced by :func:`graph_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"invalid JSON: {error}", source=source
        ) from error
    return graph_from_dict(data, source=source)


def graph_to_sdf3_xml(graph: SDFGraph) -> str:
    """An SDF3-style XML rendering of ``graph``.

    Layout::

        <sdf3 type="sdf">
          <applicationGraph name="...">
            <sdf name="...">
              <actor name="a"> <port name="out" type="out" rate="2"/> ... </actor>
              <channel name="d" srcActor="a" srcPort="out"
                       dstActor="b" dstPort="in" initialTokens="1"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a"> <executionTime time="3"/> ...
            </sdfProperties>
          </applicationGraph>
        </sdf3>
    """
    root = ElementTree.Element("sdf3", {"type": "sdf", "version": "1.0"})
    app = ElementTree.SubElement(root, "applicationGraph", {"name": graph.name})
    sdf = ElementTree.SubElement(app, "sdf", {"name": graph.name})
    actor_elements = {}
    for actor in graph.actors:
        actor_elements[actor.name] = ElementTree.SubElement(
            sdf, "actor", {"name": actor.name, "type": actor.name}
        )
    for channel in graph.channels:
        src_port = f"{channel.name}_out"
        dst_port = f"{channel.name}_in"
        ElementTree.SubElement(
            actor_elements[channel.src],
            "port",
            {"name": src_port, "type": "out", "rate": str(channel.production)},
        )
        ElementTree.SubElement(
            actor_elements[channel.dst],
            "port",
            {"name": dst_port, "type": "in", "rate": str(channel.consumption)},
        )
        attributes = {
            "name": channel.name,
            "srcActor": channel.src,
            "srcPort": src_port,
            "dstActor": channel.dst,
            "dstPort": dst_port,
        }
        if channel.tokens:
            attributes["initialTokens"] = str(channel.tokens)
        ElementTree.SubElement(sdf, "channel", attributes)
    properties = ElementTree.SubElement(app, "sdfProperties")
    for actor in graph.actors:
        actor_properties = ElementTree.SubElement(
            properties, "actorProperties", {"actor": actor.name}
        )
        processor = ElementTree.SubElement(
            actor_properties, "processor", {"type": "default", "default": "true"}
        )
        ElementTree.SubElement(
            processor, "executionTime", {"time": str(actor.execution_time)}
        )
    return ElementTree.tostring(root, encoding="unicode")


def graph_from_sdf3_xml(text: str, source: Optional[str] = None) -> SDFGraph:
    """Parse a graph from the XML dialect of :func:`graph_to_sdf3_xml`.

    Also accepts hand-written files as long as every channel references
    ports whose rates are defined on the endpoint actors.  Raises
    :class:`SerializationError` for unparsable XML or malformed
    elements.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise SerializationError(
            f"invalid XML: {error}", source=source
        ) from error
    app = root.find("applicationGraph")
    if app is None:
        raise SerializationError(
            "missing <applicationGraph> element", source=source
        )
    sdf = app.find("sdf")
    if sdf is None:
        raise SerializationError(
            "missing <sdf> element", source=source, field="applicationGraph"
        )
    graph = SDFGraph(app.get("name", sdf.get("name", "sdfg")))

    port_rates: Dict[str, Dict[str, int]] = {}
    for actor_element in sdf.findall("actor"):
        actor_name = actor_element.get("name")
        if actor_name is None:
            raise SerializationError(
                "<actor> without name", source=source, field="sdf.actor"
            )
        graph.add_actor(actor_name)
        try:
            port_rates[actor_name] = {
                port.get("name", ""): int(port.get("rate", "1"))
                for port in actor_element.findall("port")
            }
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad port rate: {error}",
                source=source,
                field=f"actor[{actor_name}]",
            ) from error

    for channel_element in sdf.findall("channel"):
        src = channel_element.get("srcActor")
        dst = channel_element.get("dstActor")
        name = channel_element.get("name")
        if not (src and dst and name):
            raise SerializationError(
                "<channel> missing name/srcActor/dstActor",
                source=source,
                field="sdf.channel",
            )
        production = port_rates.get(src, {}).get(
            channel_element.get("srcPort", ""), 1
        )
        consumption = port_rates.get(dst, {}).get(
            channel_element.get("dstPort", ""), 1
        )
        try:
            tokens = int(channel_element.get("initialTokens", "0"))
            graph.add_channel(name, src, dst, production, consumption, tokens)
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad channel: {error}",
                source=source,
                field=f"channel[{name}]",
            ) from error

    properties = app.find("sdfProperties")
    if properties is not None:
        for actor_properties in properties.findall("actorProperties"):
            actor_name = actor_properties.get("actor")
            if actor_name is None or not graph.has_actor(actor_name):
                continue
            for processor in actor_properties.findall("processor"):
                timing = processor.find("executionTime")
                if timing is not None and processor.get("default") == "true":
                    try:
                        graph.actor(actor_name).execution_time = int(
                            timing.get("time", "1")
                        )
                    except (TypeError, ValueError) as error:
                        raise SerializationError(
                            f"bad executionTime: {error}",
                            source=source,
                            field=f"actorProperties[{actor_name}]",
                        ) from error
    return graph
