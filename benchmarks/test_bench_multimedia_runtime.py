"""Section 10.3 + Section 1 reproduction: the multimedia system and the
run-time argument for working directly on SDFGs.

* ``test_h263_throughput_check_runtimes`` regenerates the Section 1
  comparison: one throughput check on the H.263 decoder, directly on
  the SDFG (paper: part of a <3 minute trajectory) versus on the HSDFG
  via maximum cycle ratio (paper: 21 minutes).  We assert the direct
  path wins by a large factor and that the HSDFG has exactly 4754
  actors.

* ``test_multimedia_system_allocation`` runs the 3x H.263 + MP3 system
  on the 2x2 mesh with cost weights (2, 0, 1), reporting run-time,
  throughput checks (paper: 34 checks, ~8 minutes, 90% in slice
  allocation) and final utilisation.  Scaled to 99 macroblocks by
  default (REPRO_BENCH_FULL_H263=1 for the paper's 2376).
"""

import pytest

from repro.arch.presets import multimedia_architecture
from repro.arch.tile import ProcessorType
from repro.baselines.hsdf_path import timed_throughput_comparison
from repro.core.flow import allocate_until_failure
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.generate.multimedia import h263_decoder, mp3_decoder
from repro.sdf.repetition import iteration_length

from _util import format_table


def test_h263_throughput_check_runtimes(benchmark):
    application = h263_decoder()  # full 2376 macroblocks
    assert iteration_length(application.graph) == 4754

    comparison = benchmark.pedantic(
        timed_throughput_comparison,
        args=(application.graph,),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["path", "actors", "seconds", "rate"],
            [
                [
                    "direct SDFG",
                    comparison.sdf_actors,
                    f"{comparison.direct_seconds:.3f}",
                    str(comparison.direct_rate),
                ],
                [
                    "HSDF + MCR",
                    comparison.hsdf_actors,
                    f"{comparison.hsdf_seconds:.3f}",
                    str(comparison.hsdf_rate),
                ],
            ],
            title=(
                "Section 1 — one throughput check on H.263 "
                f"(speedup {comparison.speedup:.0f}x; paper: 21 min vs "
                "part of a 3-min trajectory)"
            ),
        )
    )
    assert comparison.hsdf_actors == 4754
    assert comparison.direct_rate == comparison.hsdf_rate
    # the paper's qualitative claim: direct analysis is dramatically
    # faster; we require at least an order of magnitude
    assert comparison.speedup > 10


def test_multimedia_system_allocation(benchmark, bench_scale):
    macroblocks = 2376 if bench_scale["full_h263"] else 99
    generic = ProcessorType("generic")
    accelerator = ProcessorType("accelerator")

    def run():
        architecture = multimedia_architecture()
        applications = [
            h263_decoder(
                f"h263-{index}",
                macroblocks=macroblocks,
                generic=generic,
                accelerator=accelerator,
            )
            for index in range(3)
        ]
        applications.append(
            mp3_decoder(generic=generic, accelerator=accelerator)
        )
        return allocate_until_failure(
            architecture,
            applications,
            allocator=ResourceAllocator(weights=CostWeights(2, 0, 1)),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            allocation.application.name,
            len(allocation.binding.used_tiles()),
            allocation.throughput_checks,
            str(allocation.achieved_throughput),
        ]
        for allocation in result.allocations
    ]
    print()
    print(
        format_table(
            ["application", "tiles", "thr checks", "guaranteed rate"],
            rows,
            title=(
                "Section 10.3 — multimedia system "
                f"({macroblocks} macroblocks; paper: 34 checks total)"
            ),
        )
    )
    print(
        "total throughput checks:",
        result.total_throughput_checks,
        " utilisation:",
        {k: round(v, 2) for k, v in result.utilisation().items()},
    )

    # all four applications must be bound with their guarantees
    assert result.applications_bound == 4
    assert all(a.satisfied for a in result.allocations)
    # the strategy stays in the tens of checks, like the paper's 34
    assert result.total_throughput_checks < 200
