"""Connection-model ablation (the paper's §8.1 extension point).

The paper's single-actor connection model serialises latency and
bandwidth per token; a wormhole NoC model (ref [14]) pipelines
injection against network traversal.  This bench maps the running
example under both models and reports the achieved binding-aware
throughput and the TDMA slices the strategy needs to hit the same
constraint — quantifying what a more detailed connection model buys.
"""

from fractions import Fraction

import pytest

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import (
    SimpleConnectionModel,
    build_binding_aware_graph,
)
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.core.scheduling import build_static_order_schedules
from repro.core.slices import allocate_time_slices
from repro.extensions.noc_model import NocConnectionModel
from repro.throughput.state_space import throughput

from _util import format_table

MODELS = {
    "simple (paper)": SimpleConnectionModel(),
    "NoC wormhole 32b": NocConnectionModel(flit_size=32),
    "NoC wormhole 16b": NocConnectionModel(flit_size=16),
}


def test_connection_model_ablation(benchmark):
    architecture = paper_example_architecture()
    binding = paper_example_binding()
    constraint = Fraction(1, 14)

    def run():
        results = {}
        for label, model in MODELS.items():
            application = paper_example_application(
                throughput_constraint=constraint
            )
            bag = build_binding_aware_graph(
                application, architecture, binding, connection_model=model
            )
            unconstrained = throughput(bag.graph).of("a3")
            schedules = build_static_order_schedules(bag)
            slices = allocate_time_slices(bag, schedules)
            results[label] = (
                unconstrained,
                sum(slices.slices.values()),
                slices.achieved_throughput,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, str(rate), total_slices, str(achieved)]
        for label, (rate, total_slices, achieved) in results.items()
    ]
    print()
    print(
        format_table(
            ["connection model", "free-run rate", "slices needed", "achieved"],
            rows,
            title=(
                "§8.1 extension point — connection models on the running "
                f"example (constraint {constraint})"
            ),
        )
    )

    simple_rate, _, _ = results["simple (paper)"]
    noc_rate, _, _ = results["NoC wormhole 32b"]
    # free-running, pipelining injection against traversal helps
    assert noc_rate >= simple_rate
    # every model still meets the constraint
    for _, _, achieved in results.values():
        assert achieved >= constraint
    # NOTE the measured trade-off: the NoC model pipelines better but
    # its per-token path is longer (inj + traversal > monolithic), so
    # under *small* TDMA slices (large alignment delay per stage) the
    # slice budget can exceed the simple model's — model choice matters
    # exactly as §8.1 implies, and not always in the intuitive direction.
