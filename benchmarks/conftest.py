"""Shared benchmark configuration.

Every benchmark prints the paper table/figure it regenerates (visible
with ``pytest benchmarks/ --benchmark-only -s`` or in captured output on
failure).  Scale knobs come from environment variables so the default
run finishes on a laptop in minutes while the full paper grid stays one
command away:

* ``REPRO_BENCH_SEQUENCES`` — random sequences per set (paper: 3, default 1)
* ``REPRO_BENCH_ARCHS``     — architecture variants (paper: 3, default 1)
* ``REPRO_BENCH_APPS``      — applications generated per sequence (default 40)
* ``REPRO_BENCH_FULL_H263`` — set to 1 to run the multimedia system at
  the paper's 2376 macroblocks instead of the scaled 99
"""

import os

import pytest

SEQUENCES = int(os.environ.get("REPRO_BENCH_SEQUENCES", "1"))
ARCH_VARIANTS = int(os.environ.get("REPRO_BENCH_ARCHS", "1"))
APPS_PER_SEQUENCE = int(os.environ.get("REPRO_BENCH_APPS", "40"))
FULL_H263 = os.environ.get("REPRO_BENCH_FULL_H263", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale():
    return {
        "sequences": SEQUENCES,
        "arch_variants": ARCH_VARIANTS,
        "apps": APPS_PER_SEQUENCE,
        "full_h263": FULL_H263,
    }
