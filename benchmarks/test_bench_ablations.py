"""Ablation benchmarks for the design choices DESIGN.md calls out.

The paper bakes three optimisations into the strategy without isolating
them; these benches quantify each on the mixed benchmark set:

* the reverse-order rebinding pass of Section 9.1 (``optimise_binding``),
* the per-tile slice refinement of Section 9.3 (``refine_slices``),
* the 10% early-stop band of the slice binary search (``relaxation``).

Reported per variant: applications bound, total throughput checks (the
dominant cost: ~90% of the §10.3 run-time is slice allocation) and
total allocated time-wheel units.
"""

import pytest

from repro.arch.presets import benchmark_architectures
from repro.core.flow import allocate_until_failure
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.generate.benchmark import generate_benchmark_set

from _util import format_table

VARIANTS = {
    "full strategy": dict(),
    "no rebinding pass": dict(optimise_binding=False),
    "no slice refinement": dict(refine_slices=False),
    "no 10% relaxation": dict(relaxation=0.0),
    "wide 50% relaxation": dict(relaxation=0.5),
}


def run_variants(apps):
    architecture_template = benchmark_architectures()[1]
    results = {}
    for label, overrides in VARIANTS.items():
        allocator = ResourceAllocator(
            weights=CostWeights(0, 1, 2), **overrides
        )
        architecture = architecture_template.copy()
        sequence = generate_benchmark_set(
            "mixed", apps, architecture.processor_types(), seed=1
        )
        results[label] = allocate_until_failure(
            architecture, sequence, allocator=allocator
        )
    return results


def test_strategy_ablations(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_variants, args=(bench_scale["apps"],), rounds=1, iterations=1
    )

    rows = []
    for label, result in results.items():
        rows.append(
            [
                label,
                result.applications_bound,
                result.total_throughput_checks,
                result.resource_usage["timewheel"],
            ]
        )
    print()
    print(
        format_table(
            ["variant", "apps bound", "thr checks", "wheel used"],
            rows,
            title="Ablations on the mixed set (cost weights 0,1,2)",
        )
    )

    full = results["full strategy"]
    # refinement only ever shrinks slices: disabling it cannot bind more
    # applications and cannot use less wheel per application
    no_refine = results["no slice refinement"]
    assert no_refine.applications_bound <= full.applications_bound
    # skipping refinement saves throughput checks per application
    if no_refine.applications_bound == full.applications_bound:
        assert (
            no_refine.total_throughput_checks <= full.total_throughput_checks
        )
    # a wider relaxation band never increases the check count on the
    # same allocations; with equal apps bound it should not cost more
    wide = results["wide 50% relaxation"]
    exact = results["no 10% relaxation"]
    if wide.applications_bound == exact.applications_bound:
        assert wide.total_throughput_checks <= exact.total_throughput_checks
    # every variant still produces a working flow
    assert all(r.applications_bound >= 1 for r in results.values())
