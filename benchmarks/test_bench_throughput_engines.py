"""Micro-benchmarks of the three throughput engines.

These give pytest-benchmark real timing distributions (the table
benches are single-shot by necessity) and track the engines' costs:

* self-timed state-space exploration on a multirate graph,
* constrained exploration with TDMA gating,
* the HSDF + maximum-cycle-ratio baseline on the same graph.
"""

import pytest

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.baselines.hsdf_path import hsdf_throughput_check
from repro.core.scheduling import build_static_order_schedules
from repro.generate.multimedia import h263_decoder
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import throughput


@pytest.fixture(scope="module")
def h263_graph():
    return h263_decoder(macroblocks=297).graph  # quarter-size H.263


def test_bench_state_space_multirate(benchmark, h263_graph):
    result = benchmark(lambda: throughput(h263_graph))
    assert result.iteration_rate > 0


def test_bench_hsdf_baseline_howard(benchmark, h263_graph):
    rate = benchmark(lambda: hsdf_throughput_check(h263_graph, method="howard"))
    assert rate == throughput(h263_graph).iteration_rate


def test_bench_hsdf_baseline_lawler(benchmark, h263_graph):
    rate = benchmark(
        lambda: hsdf_throughput_check(h263_graph, method="numeric")
    )
    assert rate == throughput(h263_graph).iteration_rate


def test_bench_constrained_engine(benchmark):
    application = paper_example_application()
    architecture = paper_example_architecture()
    binding = paper_example_binding()
    bag = build_binding_aware_graph(
        application, architecture, binding, slices={"t1": 5, "t2": 5}
    )
    schedules = build_static_order_schedules(bag)
    scheduling = SchedulingFunction()
    for tile, schedule in schedules.items():
        scheduling.set_schedule(tile, schedule)
        scheduling.set_slice(tile, 5)
    constraints = bag.tile_constraints(scheduling)

    result = benchmark(
        lambda: constrained_throughput(bag.graph, constraints)
    )
    assert result.of("a3") > 0


def test_bench_binding_aware_construction(benchmark):
    application = paper_example_application()
    architecture = paper_example_architecture()
    binding = paper_example_binding()

    bag = benchmark(
        lambda: build_binding_aware_graph(application, architecture, binding)
    )
    assert len(bag.graph) == 5
