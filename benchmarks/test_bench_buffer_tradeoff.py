"""Buffer/throughput trade-off benchmark (the paper's ref [21]).

The allocation strategy consumes the buffer capacities declared in
``Theta``; the companion DAC'06 work explores how small they can get.
This bench maps the paper's running example, then (i) sweeps a global
buffer scale to draw the trade-off curve and (ii) runs the per-channel
minimisation, reporting the memory saved while the mapped application
keeps its throughput guarantee.
"""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.strategy import ResourceAllocator
from repro.extensions.buffer_sizing import (
    buffer_throughput_tradeoff,
    minimise_buffers,
)

from _util import format_table


def test_buffer_throughput_tradeoff(benchmark):
    application = paper_example_application(Fraction(1, 60))
    architecture = paper_example_architecture()
    allocation = ResourceAllocator().allocate(application, architecture)

    def run():
        curve = buffer_throughput_tradeoff(
            application,
            architecture,
            allocation.binding,
            allocation.scheduling,
        )
        sizing = minimise_buffers(
            application,
            architecture,
            allocation.binding,
            allocation.scheduling,
        )
        return curve, sizing

    curve, sizing = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["total buffer tokens", "constrained throughput"],
            [[tokens, str(rate)] for tokens, rate in curve],
            title="ref [21] — storage/throughput trade-off (mapped example)",
        )
    )
    print(
        f"per-channel minimisation: {sizing.memory_saved} bits saved, "
        f"throughput {sizing.achieved_throughput} "
        f">= {application.throughput_constraint} "
        f"({sizing.throughput_checks} checks)"
    )

    # the curve is monotone: more buffer tokens never reduce throughput
    ordered = sorted(curve)
    rates = [rate for _, rate in ordered]
    assert all(a <= b for a, b in zip(rates, rates[1:]))
    # starving the buffers kills the throughput entirely
    assert rates[0] == 0
    # the minimisation preserves the guarantee and saves something
    assert sizing.achieved_throughput >= application.throughput_constraint
    assert sizing.memory_saved >= 0
