"""End-to-end allocation of the classic SDF suite.

Beyond the paper's synthetic benchmark and multimedia system, this
bench maps the three classic literature applications — the CD-to-DAT
sample-rate converter (strongly multirate: HSDFG 612), the modem and
the satellite receiver — onto a homogeneous 2x2 mesh with the full
three-step strategy, reporting run-time, throughput checks and the
resources granted.  The CD2DAT allocation exercises the state-space
engines at the largest repetition vectors in the repository.
"""

import time

import pytest

from repro.arch.presets import mesh_architecture
from repro.arch.tile import ProcessorType
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.generate.classic import (
    modem,
    samplerate_converter,
    satellite_receiver,
)

from _util import format_table

DSP = ProcessorType("dsp")


def _platform():
    return mesh_architecture(
        2,
        2,
        [DSP],
        wheel=100,
        memory=3_000_000,
        bandwidth_in=10_000,
        bandwidth_out=10_000,
    )


def test_classic_suite_allocation(benchmark):
    applications = [
        modem(processor=DSP),
        satellite_receiver(processor=DSP),
        samplerate_converter(processor=DSP),
    ]

    def run():
        rows = []
        allocator = ResourceAllocator(weights=CostWeights(0, 1, 2))
        for application in applications:
            platform = _platform()
            started = time.perf_counter()
            allocation = allocator.allocate(application, platform)
            elapsed = time.perf_counter() - started
            rows.append((application, allocation, elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for application, allocation, elapsed in rows:
        table.append(
            [
                application.name,
                len(application.graph),
                f"{elapsed:.1f}",
                allocation.throughput_checks,
                len(allocation.binding.used_tiles()),
                str(allocation.achieved_throughput),
            ]
        )
    print()
    print(
        format_table(
            ["application", "actors", "seconds", "checks", "tiles", "rate"],
            table,
            title="Classic suite — full strategy on a 2x2 homogeneous mesh",
        )
    )

    for application, allocation, _ in rows:
        assert allocation.satisfied
        assert allocation.achieved_throughput >= (
            application.throughput_constraint
        )
