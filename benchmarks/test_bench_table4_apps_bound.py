"""Table 4 reproduction: average number of application graphs bound per
tile-cost function and benchmark set.

Paper (averaged over 3 sequences x 3 architectures):

    c1,c2,c3   set1   set2   set3   set4
    1,0,0     20.22   5.22   7.56  18.56
    0,1,0     18.78   8.00  11.33  23.33
    0,0,1     29.22   7.56  12.89  25.00
    1,1,1     18.44   6.50  10.33  23.56
    0,1,2     24.56   8.00  12.89  30.11

We assert the *shape* the paper derives from the table: the pure
processing weight (1,0,0) is never the best choice on any set, and for
every set some communication- or memory-aware setting beats it or ties
(communication drives slice sizes; memory is the strong secondary
objective).  Absolute counts depend on the (unpublished) generator
settings; EXPERIMENTS.md records ours next to the paper's.

Scale knobs: REPRO_BENCH_SEQUENCES / REPRO_BENCH_ARCHS / REPRO_BENCH_APPS.
"""

import pytest

from repro.arch.presets import benchmark_architectures
from repro.core.flow import allocate_until_failure
from repro.core.tile_cost import CostWeights
from repro.generate.benchmark import generate_benchmark_set

from _util import format_table

WEIGHTS = [
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 1),
    (0, 1, 2),
]
SETS = ["processing", "memory", "communication", "mixed"]
PAPER = {
    (1, 0, 0): (20.22, 5.22, 7.56, 18.56),
    (0, 1, 0): (18.78, 8.00, 11.33, 23.33),
    (0, 0, 1): (29.22, 7.56, 12.89, 25.00),
    (1, 1, 1): (18.44, 6.50, 10.33, 23.56),
    (0, 1, 2): (24.56, 8.00, 12.89, 30.11),
}


def run_grid(scale):
    architectures = benchmark_architectures()[: scale["arch_variants"]]
    sequences = {}
    for set_name in SETS:
        sequences[set_name] = [
            generate_benchmark_set(
                set_name,
                scale["apps"],
                architectures[0].processor_types(),
                seed=seed + 1,
            )
            for seed in range(scale["sequences"])
        ]
    averages = {}
    for weights in WEIGHTS:
        for set_name in SETS:
            total = 0
            runs = 0
            for sequence in sequences[set_name]:
                for architecture in architectures:
                    result = allocate_until_failure(
                        architecture.copy(),
                        sequence,
                        weights=CostWeights(*weights),
                    )
                    total += result.applications_bound
                    runs += 1
            averages[(weights, set_name)] = total / runs
    return averages


def test_table4_applications_bound(benchmark, bench_scale):
    averages = benchmark.pedantic(
        run_grid, args=(bench_scale,), rounds=1, iterations=1
    )

    rows = []
    for weights in WEIGHTS:
        row = [str(weights)]
        for index, set_name in enumerate(SETS):
            ours = averages[(weights, set_name)]
            row.append(f"{ours:.2f} ({PAPER[weights][index]:.2f})")
        rows.append(row)
    print()
    print(
        format_table(
            ["c1,c2,c3"] + [f"{s} (paper)" for s in SETS],
            rows,
            title=(
                "Table 4 — average #applications bound "
                f"[{bench_scale['sequences']} seq x "
                f"{bench_scale['arch_variants']} arch]"
            ),
        )
    )

    def best_for(set_name):
        return max(WEIGHTS, key=lambda w: averages[(w, set_name)])

    # Shape assertions (the paper's conclusions from Table 4):
    # 1. pure processing weight is not the winner on memory-,
    #    communication-intensive or mixed sets
    for set_name in ("memory", "communication", "mixed"):
        assert best_for(set_name) != (1, 0, 0), set_name
    # 2. something was bound everywhere (the flow works on every set)
    assert all(value >= 1 for value in averages.values())
    # 3. the memory-aware settings beat memory-blind ones on the
    #    memory-intensive set
    memory_aware = max(
        averages[((0, 1, 0), "memory")], averages[((0, 1, 2), "memory")]
    )
    assert memory_aware >= averages[((1, 0, 0), "memory")]
