"""Classic-benchmark sweep: the §1 scaling argument across the standard
SDF application suite.

For each classic application (CD-to-DAT sample-rate converter, modem,
satellite receiver) plus the H.263 decoder, the bench reports SDFG
size, HSDFG size and the run-time of one throughput check on each
representation — the paper's motivation table, reproduced over the
whole standard suite instead of a single graph.
"""

import pytest

from repro.baselines.hsdf_path import timed_throughput_comparison
from repro.generate.classic import (
    modem,
    samplerate_converter,
    satellite_receiver,
)
from repro.generate.multimedia import h263_decoder, mp3_decoder

from _util import format_table


def test_classic_suite_scaling(benchmark):
    applications = [
        samplerate_converter(),
        modem(),
        satellite_receiver(),
        mp3_decoder(),
        h263_decoder(macroblocks=297),  # quarter scale keeps the bench fast
    ]

    def run():
        return [
            timed_throughput_comparison(application.graph)
            for application in applications
        ]

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for comparison in comparisons:
        rows.append(
            [
                comparison.graph_name,
                comparison.sdf_actors,
                comparison.hsdf_actors,
                f"{comparison.direct_seconds * 1e3:.1f}",
                f"{comparison.hsdf_seconds * 1e3:.1f}",
                f"{comparison.speedup:.1f}x",
            ]
        )
    print()
    print(
        format_table(
            [
                "application",
                "SDF actors",
                "HSDF actors",
                "direct (ms)",
                "HSDF (ms)",
                "speedup",
            ],
            rows,
            title="§1 scaling across the classic SDF suite",
        )
    )

    for comparison in comparisons:
        # both paths agree on the exact rate everywhere
        assert comparison.direct_rate == comparison.hsdf_rate
    # the multirate graphs blow up in HSDF form; the direct path's cost
    # does not follow the blow-up
    cd2dat = comparisons[0]
    assert cd2dat.hsdf_actors == 612
    assert cd2dat.sdf_actors == 6
    h263 = comparisons[-1]
    assert h263.speedup > 1
