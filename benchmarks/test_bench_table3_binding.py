"""Table 3 reproduction: bindings of the running example's actors for
four cost-weight settings, timing the binding step.

Paper rows:   (1,0,0) -> t1 t1 t2;  (0,1,0) -> t1 t2 t2;
              (0,0,1) -> t1 t1 t1;  (1,1,1) -> t1 t1 t2.
Rows 1, 3 and 4 reproduce exactly; row 2 places a2 on t1 instead of t2
(the paper's precise memory-cost evaluation order is not recoverable
from the text — see EXPERIMENTS.md).
"""

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.binding import bind_application
from repro.core.tile_cost import CostWeights

from _util import format_table

PAPER_ROWS = {
    (1, 0, 0): ("t1", "t1", "t2"),
    (0, 1, 0): ("t1", "t2", "t2"),
    (0, 0, 1): ("t1", "t1", "t1"),
    (1, 1, 1): ("t1", "t1", "t2"),
}
EXACTLY_REPRODUCED = [(1, 0, 0), (0, 0, 1), (1, 1, 1)]


def test_table3_bindings(benchmark):
    architecture = paper_example_architecture()

    def bind_all():
        results = {}
        for weights in PAPER_ROWS:
            application = paper_example_application()
            binding = bind_application(
                application, architecture, CostWeights(*weights)
            )
            results[weights] = tuple(
                binding.tile_of(a) for a in ("a1", "a2", "a3")
            )
        return results

    results = benchmark(bind_all)

    rows = []
    for weights, paper in PAPER_ROWS.items():
        ours = results[weights]
        rows.append(
            [
                str(weights),
                " ".join(ours),
                " ".join(paper),
                "yes" if ours == paper else "no",
            ]
        )
    print()
    print(
        format_table(
            ["c1,c2,c3", "ours", "paper", "match"],
            rows,
            title="Table 3 — binding of actors to tiles",
        )
    )

    for weights in EXACTLY_REPRODUCED:
        assert results[weights] == PAPER_ROWS[weights]
    # the remaining row still satisfies all resource constraints and
    # binds a1 to t1 as the paper does
    assert results[(0, 1, 0)][0] == "t1"
