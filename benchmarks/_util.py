"""Plain-text table formatting shared by the benchmark reports."""


def format_table(headers, rows, title=""):
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
