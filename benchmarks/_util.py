"""Plain-text table formatting shared by the benchmark reports.

With ``REPRO_BENCH_JSON=PATH`` set, every formatted table is also
appended to ``PATH`` as one JSON line (``{"title", "headers", "rows"}``),
so the paper-table benchmarks leave a machine-readable record next to
their console output.  The curated perf trajectory lives elsewhere:
``repro-alloc bench`` writes schema-versioned ``BENCH_<label>.json``
run reports (see ``docs/OBSERVABILITY.md``).
"""

import json
import os


def format_table(headers, rows, title=""):
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    _record_json(headers, rows, title)
    return "\n".join(lines)


def _record_json(headers, rows, title):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    record = {
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[str(c) for c in row] for row in rows],
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")
