"""Table 5 reproduction: resource usage on the mixed set (set 4), per
tile-cost function, normalised per resource to the largest usage over
the five cost functions.

Paper:

    c1,c2,c3  timewheel  memory  connections  input bw  output bw
    1,0,0        0.71     0.82      0.88        0.83      0.70
    0,1,0        0.85     0.93      1.00        1.00      1.00
    0,0,1        0.72     0.82      0.67        0.47      0.67
    1,1,1        0.96     0.98      1.00        0.94      0.79
    0,1,2        1.00     1.00      0.94        0.72      0.92

Shape asserted: (i) normalisation puts every entry in (0, 1] with a 1
per column; (ii) the best-binding cost functions also drive resource
usage highest (they pack more applications in), i.e. the cost function
that binds the most applications is within the top of the timewheel
column — the paper's "effectively uses the available resources".
"""

import pytest

from repro.arch.presets import benchmark_architectures
from repro.core.flow import allocate_until_failure
from repro.core.tile_cost import CostWeights
from repro.generate.benchmark import generate_benchmark_set

from _util import format_table

WEIGHTS = [(1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1), (0, 1, 2)]
RESOURCES = ["timewheel", "memory", "connections", "input_bw", "output_bw"]
PAPER = {
    (1, 0, 0): (0.71, 0.82, 0.88, 0.83, 0.70),
    (0, 1, 0): (0.85, 0.93, 1.00, 1.00, 1.00),
    (0, 0, 1): (0.72, 0.82, 0.67, 0.47, 0.67),
    (1, 1, 1): (0.96, 0.98, 1.00, 0.94, 0.79),
    (0, 1, 2): (1.00, 1.00, 0.94, 0.72, 0.92),
}


def run_mixed_grid(scale):
    architectures = benchmark_architectures()[: scale["arch_variants"]]
    sequences = [
        generate_benchmark_set(
            "mixed",
            scale["apps"],
            architectures[0].processor_types(),
            seed=seed + 1,
        )
        for seed in range(scale["sequences"])
    ]
    usage = {}
    bound = {}
    for weights in WEIGHTS:
        totals = {resource: 0 for resource in RESOURCES}
        bound_total = 0
        for sequence in sequences:
            for architecture in architectures:
                result = allocate_until_failure(
                    architecture.copy(), sequence, weights=CostWeights(*weights)
                )
                for resource in RESOURCES:
                    totals[resource] += result.resource_usage[resource]
                bound_total += result.applications_bound
        usage[weights] = totals
        bound[weights] = bound_total
    return usage, bound


def test_table5_resource_efficiency(benchmark, bench_scale):
    usage, bound = benchmark.pedantic(
        run_mixed_grid, args=(bench_scale,), rounds=1, iterations=1
    )

    maxima = {
        resource: max(usage[w][resource] for w in WEIGHTS) or 1
        for resource in RESOURCES
    }
    normalised = {
        w: {r: usage[w][r] / maxima[r] for r in RESOURCES} for w in WEIGHTS
    }

    rows = []
    for index, weights in enumerate(WEIGHTS):
        row = [str(weights)]
        for column, resource in enumerate(RESOURCES):
            row.append(
                f"{normalised[weights][resource]:.2f} "
                f"({PAPER[weights][column]:.2f})"
            )
        rows.append(row)
    print()
    print(
        format_table(
            ["c1,c2,c3"] + [f"{r} (paper)" for r in RESOURCES],
            rows,
            title="Table 5 — normalised resource usage, mixed set",
        )
    )

    for resource in RESOURCES:
        column = [normalised[w][resource] for w in WEIGHTS]
        assert max(column) == 1.0
        assert all(0 <= value <= 1 for value in column)
    # The setting that binds the most applications should be a heavy
    # resource user (top half of the timewheel column).
    best = max(WEIGHTS, key=lambda w: bound[w])
    wheel_rank = sorted(
        WEIGHTS, key=lambda w: normalised[w]["timewheel"], reverse=True
    ).index(best)
    assert wheel_rank <= 2
