"""Figure 5 reproduction: throughput of the running example under
(a) the application SDFG alone, (b) the binding-aware SDFG and (c) the
schedule/TDMA-constrained execution, plus the ref-[4] baseline.

Paper values (with the figure's unpublished edge rates): 1/2, 1/29,
1/30.  Our rate-1 reconstruction yields 1/2, 1/11, 9/100 — the same
strict ordering, with the constrained analysis strictly more accurate
than the ref-[4] inflation model (the Section 8.2 claim).

The benchmark times one constrained state-space exploration, the
operation the slice-allocation binary search performs repeatedly.
"""

from fractions import Fraction

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.core.scheduling import build_static_order_schedules
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import throughput

from _util import format_table

SLICES = {"t1": 5, "t2": 5}


def _setup():
    application = paper_example_application()
    architecture = paper_example_architecture()
    binding = paper_example_binding()
    bag = build_binding_aware_graph(
        application, architecture, binding, slices=SLICES
    )
    schedules = build_static_order_schedules(bag)
    scheduling = SchedulingFunction()
    for tile, schedule in schedules.items():
        scheduling.set_schedule(tile, schedule)
        scheduling.set_slice(tile, SLICES[tile])
    return application, bag, scheduling


def test_fig5_throughput_ordering(benchmark):
    application, bag, scheduling = _setup()

    ideal = throughput(application.graph, auto_concurrency=False).of("a3")
    bound = throughput(bag.graph).of("a3")
    constraints = bag.tile_constraints(scheduling)
    constrained = benchmark(
        lambda: constrained_throughput(bag.graph, constraints).of("a3")
    )
    inflated = tdma_inflated_throughput(bag, SLICES).of("a3")

    print()
    print(
        format_table(
            ["analysis", "a3 rate (ours)", "paper"],
            [
                ["(a) application SDFG", str(ideal), "1/2"],
                ["(b) binding-aware", str(bound), "1/29"],
                ["(c) constrained", str(constrained), "1/30"],
                ["ref [4] inflation", str(inflated), "(more pessimistic)"],
            ],
            title="Fig. 5 — throughput of the running example",
        )
    )

    assert ideal == Fraction(1, 2)  # exact paper value
    assert bound < ideal
    assert constrained < bound
    assert inflated <= constrained  # [4] is never more accurate
