"""Application-ordering benchmark (the paper's §10.1 suggestion).

The paper's flow allocates applications in arrival order and stops at
the first failure, noting that "a design-time preprocessing step that
orders the applications to optimize the order in which they are
handled ... may improve the results."  This bench quantifies the
suggestion: the allocate-until-failure flow runs on the mixed set under
every ordering heuristic, with and without continue-after-failure (the
other §10.1 improvement, also implemented).
"""

import pytest

from repro.arch.presets import benchmark_architectures
from repro.core.tile_cost import CostWeights
from repro.extensions.ordering import ORDERING_STRATEGIES, compare_orderings
from repro.generate.benchmark import generate_benchmark_set

from _util import format_table


def test_ordering_strategies(benchmark, bench_scale):
    architecture = benchmark_architectures()[1]
    applications = generate_benchmark_set(
        "mixed",
        bench_scale["apps"],
        architecture.processor_types(),
        seed=1,
    )

    def run():
        stop_at_failure = compare_orderings(
            architecture, applications, weights=CostWeights(0, 1, 2)
        )
        keep_going = compare_orderings(
            architecture,
            applications,
            weights=CostWeights(0, 1, 2),
            continue_after_failure=True,
        )
        return stop_at_failure, keep_going

    stop_at_failure, keep_going = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    for strategy in ORDERING_STRATEGIES:
        rows.append(
            [
                strategy,
                stop_at_failure[strategy].applications_bound,
                keep_going[strategy].applications_bound,
            ]
        )
    print()
    print(
        format_table(
            ["ordering", "stop at failure", "continue after failure"],
            rows,
            title="§10.1 suggestion — ordering the applications (mixed set)",
        )
    )

    baseline = stop_at_failure["fifo"].applications_bound
    best = max(r.applications_bound for r in stop_at_failure.values())
    # some ordering is at least as good as arrival order
    assert best >= baseline
    # continuing after a failure can only help (same order, more tries)
    for strategy in ORDERING_STRATEGIES:
        assert (
            keep_going[strategy].applications_bound
            >= stop_at_failure[strategy].applications_bound
        )
